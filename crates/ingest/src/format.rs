//! The versioned workload interchange format (profile documents).
//!
//! A profile document is a single JSON object:
//!
//! ```json
//! {"version":1,"kind":"profile","profile":{ ...28 Profile fields... }}
//! ```
//!
//! * `version` — format version; only [`FORMAT_VERSION`] is accepted.
//! * `kind` — `"profile"` (the raw-trace format is line-based and lives
//!   in [`crate::import`]).
//! * `profile` — every field of [`Profile`], exactly as
//!   [`dse_workload::Profile`]'s JSON form.
//!
//! Validation is **strict**: unknown fields are rejected (with their key
//! path), missing fields are rejected, and every field must satisfy
//! [`Profile::validate`]. The one concession to external producers is
//! ε-repair ([`normalize_profile`]): values that miss the legal envelope
//! by at most [`EPSILON`] (a fraction of `1.0000003`, a weight of
//! `-1e-9`, branch-class fractions summing to `1 + 1e-7`) are snapped
//! deterministically onto the boundary before validation. Repair is
//! idempotent, so `export → import → export` is byte-identical — the
//! round-trip gate `tests/ingest_roundtrip.rs` pins it.

use dse_util::json::{self, FromJson, Json, JsonError, ToJson};
use dse_workload::{intern_name, Profile};

use crate::IngestError;

/// Interchange format version accepted and emitted by this build.
pub const FORMAT_VERSION: u64 = 1;

/// Upper bound on a profile document's size. Far above any legitimate
/// document (~1 KB); rejects accidental or hostile blobs before parsing.
pub const MAX_PROFILE_BYTES: usize = 1 << 20;

/// Tolerance of the deterministic ε-repair pass: values missing the
/// legal envelope by at most this much are snapped onto the boundary.
pub const EPSILON: f64 = 1e-6;

/// The complete field set of a `profile` object, in canonical (export)
/// order. Any other key is rejected.
pub const PROFILE_FIELDS: [&str; 28] = [
    "name",
    "suite",
    "seed",
    "w_int_alu",
    "w_int_mul",
    "w_int_div",
    "w_fp_alu",
    "w_fp_mul",
    "w_fp_div",
    "w_load",
    "w_store",
    "block_size",
    "code_kb",
    "br_biased",
    "br_loop",
    "br_pattern",
    "br_random",
    "bias_p",
    "loop_mean",
    "dep_p",
    "dep_decay",
    "data_kb",
    "hot_frac",
    "zipf_s",
    "w_hot",
    "w_stream",
    "w_rand",
    "chase_frac",
];

/// Snaps `x` onto `[lo, hi]` if it misses by at most [`EPSILON`].
fn snap(x: f64, lo: f64, hi: f64) -> f64 {
    if x < lo && x > lo - EPSILON {
        lo
    } else if x > hi && x < hi + EPSILON {
        hi
    } else {
        x
    }
}

/// Deterministic ε-repair: snaps near-boundary fractions and weights
/// onto the legal envelope and rescales branch-class fractions whose sum
/// exceeds 1 by at most [`EPSILON`]. Values farther out are left alone
/// for [`Profile::validate`] to reject. Idempotent.
pub fn normalize_profile(p: &mut Profile) {
    for w in [
        &mut p.w_int_alu,
        &mut p.w_int_mul,
        &mut p.w_int_div,
        &mut p.w_fp_alu,
        &mut p.w_fp_mul,
        &mut p.w_fp_div,
        &mut p.w_load,
        &mut p.w_store,
        &mut p.w_hot,
        &mut p.w_stream,
        &mut p.w_rand,
    ] {
        if *w < 0.0 && *w > -EPSILON {
            *w = 0.0;
        }
    }
    for f in [
        &mut p.br_biased,
        &mut p.br_loop,
        &mut p.br_pattern,
        &mut p.br_random,
        &mut p.bias_p,
        &mut p.dep_p,
        &mut p.hot_frac,
        &mut p.chase_frac,
    ] {
        *f = snap(*f, 0.0, 1.0);
    }
    // Branch-class fractions may sum slightly over 1 after independent
    // rounding by an external producer; rescale once. The scaled sum
    // lands within a few ulps of 1 — inside validate()'s 1e-9 slack —
    // so a second pass never rescales again (idempotence).
    let sum = p.br_biased + p.br_loop + p.br_pattern + p.br_random;
    if sum > 1.0 + 1e-9 && sum < 1.0 + EPSILON {
        let inv = 1.0 / sum;
        p.br_biased *= inv;
        p.br_loop *= inv;
        p.br_pattern *= inv;
        p.br_random *= inv;
    }
}

/// Serialises `profile` as a canonical interchange document (compact
/// JSON, fields in [`PROFILE_FIELDS`] order, trailing newline).
/// The profile is ε-repaired first so exports are always importable.
pub fn export_profile(profile: &Profile) -> String {
    let mut p = profile.clone();
    normalize_profile(&mut p);
    let doc = Json::obj([
        ("version", FORMAT_VERSION.to_json()),
        ("kind", "profile".to_json()),
        ("profile", p.to_json()),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    out
}

/// Wrapper whose `FromJson` performs the strict interchange checks, so
/// [`json::from_str`] can re-anchor conversion errors to byte offsets.
struct ProfileDoc(Profile);

impl FromJson for ProfileDoc {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let Json::Obj(fields) = v else {
            return Err(JsonError::msg("interchange document must be an object"));
        };
        for (k, _) in fields {
            if !["version", "kind", "profile"].contains(&k.as_str()) {
                return Err(JsonError::msg(format!(
                    "unknown field `{k}` (interchange v{FORMAT_VERSION} allows version/kind/profile)"
                ))
                .in_path(k));
            }
        }
        let version: u64 = v.get("version")?;
        if version != FORMAT_VERSION {
            return Err(JsonError::msg(format!(
                "unsupported interchange version {version} (this build reads {FORMAT_VERSION})"
            ))
            .in_path("version"));
        }
        let kind: String = v.get("kind")?;
        if kind != "profile" {
            return Err(JsonError::msg(format!(
                "unsupported document kind `{kind}` (expected `profile`)"
            ))
            .in_path("kind"));
        }
        let pv = v.field("profile")?;
        let Json::Obj(pfields) = pv else {
            return Err(JsonError::msg("field `profile` must be an object").in_path("profile"));
        };
        for (k, _) in pfields {
            if !PROFILE_FIELDS.contains(&k.as_str()) {
                return Err(JsonError::msg(format!("unknown profile field `{k}`"))
                    .in_path(k.clone())
                    .in_path("profile"));
            }
        }
        // ε-repair before Profile's own validation, so near-boundary
        // values from external producers survive; the repaired values
        // are re-serialised under the same keys, keeping error paths
        // (and hence byte offsets) intact.
        let repaired = repair_json(pv)?;
        let profile = Profile::from_json(&repaired).map_err(|e| e.in_path("profile"))?;
        Ok(ProfileDoc(profile))
    }
}

/// Applies [`normalize_profile`]'s repairs directly on the JSON object,
/// leaving non-numeric or missing fields untouched (their errors are
/// reported by `Profile::from_json` with correct paths).
fn repair_json(pv: &Json) -> Result<Json, JsonError> {
    // Parse what we can into a throwaway Profile only if all numeric
    // fields are present and numeric; otherwise return the original so
    // Profile::from_json reports the precise failure.
    let mut fields = match pv {
        Json::Obj(f) => f.clone(),
        _ => return Ok(pv.clone()),
    };
    let num = |fields: &[(String, Json)], key: &str| -> Option<f64> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64().ok())
    };
    let weight_keys = [
        "w_int_alu",
        "w_int_mul",
        "w_int_div",
        "w_fp_alu",
        "w_fp_mul",
        "w_fp_div",
        "w_load",
        "w_store",
        "w_hot",
        "w_stream",
        "w_rand",
    ];
    let frac_keys = [
        "br_biased",
        "br_loop",
        "br_pattern",
        "br_random",
        "bias_p",
        "dep_p",
        "hot_frac",
        "chase_frac",
    ];
    let set = |fields: &mut Vec<(String, Json)>, key: &str, x: f64| {
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = Json::Num(x);
        }
    };
    for key in weight_keys {
        if let Some(x) = num(&fields, key) {
            if x < 0.0 && x > -EPSILON {
                set(&mut fields, key, 0.0);
            }
        }
    }
    for key in frac_keys {
        if let Some(x) = num(&fields, key) {
            let snapped = snap(x, 0.0, 1.0);
            if snapped != x {
                set(&mut fields, key, snapped);
            }
        }
    }
    let br_keys = ["br_biased", "br_loop", "br_pattern", "br_random"];
    if let (Some(a), Some(b), Some(c), Some(d)) = (
        num(&fields, br_keys[0]),
        num(&fields, br_keys[1]),
        num(&fields, br_keys[2]),
        num(&fields, br_keys[3]),
    ) {
        let sum = a + b + c + d;
        if sum > 1.0 + 1e-9 && sum < 1.0 + EPSILON {
            let inv = 1.0 / sum;
            for (key, x) in br_keys.into_iter().zip([a, b, c, d]) {
                set(&mut fields, key, x * inv);
            }
        }
    }
    Ok(Json::Obj(fields))
}

/// Parses a strict interchange document into a validated [`Profile`].
///
/// # Errors
///
/// * [`IngestError::TooLarge`] above [`MAX_PROFILE_BYTES`];
/// * [`IngestError::Parse`] for syntax errors, unknown/missing fields
///   (with key path and byte offset) and version/kind mismatches;
/// * [`IngestError::Invalid`] when the profile fails
///   [`Profile::validate`] after ε-repair.
pub fn import_profile(text: &str) -> Result<Profile, IngestError> {
    if text.len() > MAX_PROFILE_BYTES {
        return Err(IngestError::TooLarge {
            bytes: text.len() as u64,
            limit: MAX_PROFILE_BYTES as u64,
        });
    }
    match json::from_str::<ProfileDoc>(text) {
        Ok(doc) => Ok(doc.0),
        Err(e) if e.message.contains("fails validation") => {
            Err(IngestError::Invalid(e.to_string()))
        }
        Err(e) => Err(IngestError::Parse(e.to_string())),
    }
}

/// Re-interns a parsed profile name (convenience re-export point for
/// callers constructing profiles by hand).
pub fn interned(name: &str) -> &'static str {
    intern_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workload::Suite;

    fn demo() -> Profile {
        Profile::template("demo-x", Suite::External, 42)
    }

    #[test]
    fn export_import_round_trips_value_exactly() {
        let p = demo();
        let text = export_profile(&p);
        let back = import_profile(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn export_import_export_is_byte_identical() {
        let text = export_profile(&demo());
        let text2 = export_profile(&import_profile(&text).unwrap());
        assert_eq!(text, text2);
    }

    #[test]
    fn canonical_suite_profiles_round_trip() {
        for p in dse_workload::suites::all_benchmarks() {
            let text = export_profile(&p);
            assert_eq!(import_profile(&text).unwrap(), p, "{}", p.name);
        }
    }

    #[test]
    fn unknown_top_level_field_is_rejected_with_path() {
        let mut text = export_profile(&demo());
        text = text.replacen("{\"version\"", "{\"extra\":1,\"version\"", 1);
        let err = import_profile(&text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown field `extra`"), "{msg}");
    }

    #[test]
    fn unknown_profile_field_is_rejected_with_path() {
        let mut text = export_profile(&demo());
        text = text.replacen("\"w_int_alu\"", "\"bogus\":3,\"w_int_alu\"", 1);
        let err = import_profile(&text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown profile field `bogus`"), "{msg}");
        assert!(msg.contains("$.profile.bogus"), "{msg}");
    }

    #[test]
    fn wrong_version_and_kind_are_rejected() {
        let text = export_profile(&demo());
        let v2 = text.replacen("\"version\":1", "\"version\":2", 1);
        assert!(import_profile(&v2)
            .unwrap_err()
            .to_string()
            .contains("unsupported interchange version 2"));
        let k = text.replacen("\"kind\":\"profile\"", "\"kind\":\"trace\"", 1);
        assert!(import_profile(&k)
            .unwrap_err()
            .to_string()
            .contains("unsupported document kind"));
    }

    #[test]
    fn missing_field_error_names_the_field() {
        let text = export_profile(&demo()).replacen("\"zipf_s\":1.5,", "", 1);
        let err = import_profile(&text).unwrap_err();
        assert!(err.to_string().contains("missing field `zipf_s`"));
    }

    #[test]
    fn type_error_carries_path_and_offset() {
        let text = export_profile(&demo()).replacen("\"zipf_s\":1.5", "\"zipf_s\":\"hi\"", 1);
        let err = import_profile(&text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("$.profile.zipf_s"), "{msg}");
        assert!(!msg.contains("byte 0)"), "offset should be located: {msg}");
    }

    #[test]
    fn epsilon_repair_accepts_near_boundary_sums() {
        // Branch fractions that sum to 1 + 3e-7 (within EPSILON) import
        // fine; a sum beyond EPSILON is rejected.
        let mut p = demo();
        p.br_biased = 0.6;
        p.br_loop = 0.25 + 3e-7;
        p.br_pattern = 0.1;
        p.br_random = 0.05;
        let text = export_profile(&p); // export repairs, so build by hand:
        let back = import_profile(&text).unwrap();
        let sum = back.br_biased + back.br_loop + back.br_pattern + back.br_random;
        assert!(sum <= 1.0 + 1e-9, "sum {sum}");

        let raw = export_profile(&demo()).replacen("\"br_biased\":0.6", "\"br_biased\":0.9", 1);
        let err = import_profile(&raw).unwrap_err();
        assert!(matches!(err, IngestError::Invalid(_)), "{err}");
    }

    #[test]
    fn epsilon_repair_snaps_tiny_negatives_and_overshoots() {
        let text = export_profile(&demo())
            .replacen("\"w_store\":10", "\"w_store\":-1e-9", 1)
            .replacen("\"dep_p\":0.65", "\"dep_p\":1.0000001", 1);
        let p = import_profile(&text).unwrap();
        assert_eq!(p.w_store, 0.0);
        assert_eq!(p.dep_p, 1.0);
    }

    #[test]
    fn nan_rate_is_rejected() {
        // NaN has no JSON representation, but a malicious producer can
        // try huge exponents; the parser rejects overflow to infinity.
        let text = export_profile(&demo()).replacen("\"dep_p\":0.65", "\"dep_p\":1e999", 1);
        assert!(import_profile(&text).is_err());
    }

    #[test]
    fn oversized_document_is_rejected_at_the_cap() {
        let mut text = export_profile(&demo());
        text.insert_str(0, &" ".repeat(MAX_PROFILE_BYTES));
        let err = import_profile(&text).unwrap_err();
        assert!(matches!(err, IngestError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn normalize_is_identity_on_valid_profiles() {
        for p in dse_workload::suites::all_benchmarks() {
            let mut q = p.clone();
            normalize_profile(&mut q);
            assert_eq!(q, p, "{}", p.name);
        }
    }
}
