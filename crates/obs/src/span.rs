//! Structured tracing: span trees with monotonic timing.
//!
//! A span is an RAII guard created by [`crate::span!`]; while it lives,
//! any span opened on the same thread becomes its child. Finished spans
//! accumulate in a global log drained by [`take_spans`], rendered as
//! JSONL by [`to_jsonl`], and aggregated into a self-time flame table by
//! [`flame_table`].
//!
//! Work handed to another thread keeps its ancestry when the spawning
//! code captures [`current`] and the worker installs it with
//! [`ThreadContext::enter`] — this is what `dse_util::par::par_map` does,
//! so spans opened inside parallel jobs nest under the caller's span.
//!
//! Recording is gated on [`crate::enabled`]; a disabled span costs one
//! relaxed atomic load and never allocates.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Span ids start at 1; 0 is never issued so `parent == 0` means "root".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

static LOG: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// The innermost live span on this thread (`None` at top level).
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Nanoseconds since the process-wide monotonic epoch (first use).
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A finished span, as drained by [`take_spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (process-wide, starts at 1).
    pub id: u64,
    /// Id of the enclosing span, or `None` for roots.
    pub parent: Option<u64>,
    /// Static span name, e.g. `"train_mlp"`.
    pub name: &'static str,
    /// Pre-rendered `key=value` pairs, space-separated ("" when none).
    pub fields: String,
    /// Start time in nanoseconds since the monotonic epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// An RAII span guard. Create with [`crate::span!`]; the span closes
/// (records its duration and restores its parent as current) on drop.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    /// `None` when recording was disabled at creation.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: String,
    start_ns: u64,
}

impl Span {
    /// Starts a span if recording is enabled. Prefer [`crate::span!`],
    /// which skips rendering `fields` entirely when disabled.
    pub fn start(name: &'static str, fields: String) -> Span {
        if !crate::enabled() {
            return Span { live: None };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT.with(|c| c.replace(Some(id)));
        Span {
            live: Some(LiveSpan {
                id,
                parent,
                name,
                fields,
                start_ns: now_ns(),
            }),
        }
    }

    /// A no-op span (what [`crate::span!`] returns when disabled).
    pub fn disabled() -> Span {
        Span { live: None }
    }

    /// This span's id, or `None` if recording was disabled.
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let end = now_ns();
        CURRENT.with(|c| c.set(live.parent));
        let record = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            fields: live.fields,
            start_ns: live.start_ns,
            dur_ns: end.saturating_sub(live.start_ns),
        };
        LOG.lock().unwrap_or_else(|e| e.into_inner()).push(record);
    }
}

/// Opens a timed span over the enclosing scope.
///
/// `span!("name")` or `span!("name", key = expr, ...)`; field values are
/// rendered with `Display` **only when recording is enabled**. Bind the
/// result (`let _guard = span!(...)`) — dropping it immediately records
/// an empty span.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::start($name, ::std::string::String::new())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::enabled() {
            let mut __fields = ::std::string::String::new();
            $(
                if !__fields.is_empty() {
                    __fields.push(' ');
                }
                __fields.push_str(stringify!($key));
                __fields.push('=');
                let _ = ::std::fmt::Write::write_fmt(
                    &mut __fields,
                    ::std::format_args!("{}", $val),
                );
            )+
            $crate::span::Span::start($name, __fields)
        } else {
            $crate::span::Span::disabled()
        }
    };
}

/// The innermost live span id on this thread. Capture this before
/// spawning workers and hand it to [`ThreadContext::enter`] in each
/// worker so their spans nest under the caller's.
pub fn current() -> Option<u64> {
    CURRENT.with(|c| c.get())
}

/// Installs a foreign span id as this thread's current span for the
/// guard's lifetime; the previous current span is restored on drop.
pub struct ThreadContext {
    prev: Option<u64>,
}

impl ThreadContext {
    /// Makes `parent` the current span on this thread.
    pub fn enter(parent: Option<u64>) -> ThreadContext {
        ThreadContext {
            prev: CURRENT.with(|c| c.replace(parent)),
        }
    }
}

impl Drop for ThreadContext {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Drains and returns every finished span recorded so far, ordered by
/// completion time.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *LOG.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Renders spans as one JSON object per line.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(spans.len() * 96);
    for s in spans {
        out.push_str(&format!("{{\"id\":{},\"parent\":", s.id));
        match s.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":\"");
        crate::json_escape_into(&mut out, s.name);
        out.push_str("\",\"fields\":\"");
        crate::json_escape_into(&mut out, &s.fields);
        out.push_str(&format!(
            "\",\"start_us\":{},\"dur_us\":{}}}\n",
            s.start_ns / 1_000,
            s.dur_ns / 1_000
        ));
    }
    out
}

/// One row of the self-time flame table: all spans sharing a name,
/// aggregated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameRow {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed wall durations.
    pub total_ns: u64,
    /// Summed self times: duration minus the durations of direct
    /// children, clamped at zero per span (parallel children can sum to
    /// more than their parent's wall time).
    pub self_ns: u64,
}

/// Aggregates spans into a flame table sorted by self time, descending
/// (ties broken by name so the table is deterministic).
pub fn flame_table(spans: &[SpanRecord]) -> Vec<FlameRow> {
    use std::collections::HashMap;
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_insert(0) += s.dur_ns;
        }
    }
    let mut rows: HashMap<&'static str, FlameRow> = HashMap::new();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let row = rows.entry(s.name).or_insert(FlameRow {
            name: s.name,
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        row.count += 1;
        row.total_ns += s.dur_ns;
        row.self_ns += self_ns;
    }
    let mut out: Vec<FlameRow> = rows.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    out
}

/// Renders a flame table as aligned text, one row per span name.
pub fn render_flame(rows: &[FlameRow]) -> String {
    let total_self: u64 = rows.iter().map(|r| r.self_ns).sum::<u64>().max(1);
    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = format!(
        "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>6}\n",
        "span", "count", "total_ms", "self_ms", "self%"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12.3}  {:>12.3}  {:>5.1}%\n",
            r.name,
            r.count,
            r.total_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
            100.0 * r.self_ns as f64 / total_self as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Span tests share the global log and enablement flag; serialise.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn with_obs<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let _ = take_spans();
        let r = f();
        crate::set_enabled(false);
        let _ = take_spans();
        r
    }

    #[test]
    fn nesting_records_parent_links() {
        with_obs(|| {
            {
                let outer = crate::span!("t.outer");
                let outer_id = outer.id().unwrap();
                {
                    let inner = crate::span!("t.inner", n = 7);
                    assert_eq!(
                        current(),
                        inner.id(),
                        "current should be the innermost span"
                    );
                }
                assert_eq!(current(), Some(outer_id));
            }
            assert_eq!(current(), None);
            let spans = take_spans();
            assert_eq!(spans.len(), 2);
            // Inner closes first.
            assert_eq!(spans[0].name, "t.inner");
            assert_eq!(spans[0].fields, "n=7");
            assert_eq!(spans[0].parent, Some(spans[1].id));
            assert_eq!(spans[1].name, "t.outer");
            assert_eq!(spans[1].parent, None);
        });
    }

    #[test]
    fn disabled_spans_record_nothing_and_skip_fields() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        let _ = take_spans();
        let mut evaluated = false;
        {
            let _s = crate::span!(
                "t.off",
                x = {
                    evaluated = true;
                    1
                }
            );
        }
        assert!(!evaluated, "field exprs must not run when disabled");
        assert!(take_spans().is_empty());
    }

    #[test]
    fn thread_context_propagates_ancestry() {
        with_obs(|| {
            {
                let outer = crate::span!("t.root");
                let parent = current();
                assert_eq!(parent, outer.id());
                std::thread::scope(|s| {
                    s.spawn(move || {
                        let _ctx = ThreadContext::enter(parent);
                        let _child = crate::span!("t.worker");
                    });
                });
            }
            let spans = take_spans();
            let worker = spans.iter().find(|s| s.name == "t.worker").unwrap();
            let root = spans.iter().find(|s| s.name == "t.root").unwrap();
            assert_eq!(worker.parent, Some(root.id));
        });
    }

    #[test]
    fn flame_table_subtracts_child_time() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "outer",
                fields: String::new(),
                start_ns: 0,
                dur_ns: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "inner",
                fields: String::new(),
                start_ns: 10,
                dur_ns: 60,
            },
        ];
        let rows = flame_table(&spans);
        assert_eq!(rows.len(), 2);
        let outer = rows.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.self_ns, 40);
        let inner = rows.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(inner.self_ns, 60);
    }

    #[test]
    fn flame_table_clamps_parallel_children_at_zero() {
        // Two children each as long as the parent (ran in parallel).
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "outer",
                fields: String::new(),
                start_ns: 0,
                dur_ns: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "job",
                fields: String::new(),
                start_ns: 0,
                dur_ns: 100,
            },
            SpanRecord {
                id: 3,
                parent: Some(1),
                name: "job",
                fields: String::new(),
                start_ns: 0,
                dur_ns: 100,
            },
        ];
        let rows = flame_table(&spans);
        let outer = rows.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(outer.self_ns, 0, "self time clamps at zero");
    }

    #[test]
    fn jsonl_escapes_and_shapes() {
        let spans = vec![SpanRecord {
            id: 3,
            parent: Some(1),
            name: "t.json",
            fields: "path=a\"b".to_string(),
            start_ns: 2_000,
            dur_ns: 5_000,
        }];
        let line = to_jsonl(&spans);
        assert_eq!(
            line,
            "{\"id\":3,\"parent\":1,\"name\":\"t.json\",\"fields\":\"path=a\\\"b\",\"start_us\":2,\"dur_us\":5}\n"
        );
    }

    #[test]
    fn render_flame_is_aligned_text() {
        let rows = vec![FlameRow {
            name: "alpha",
            count: 2,
            total_ns: 3_000_000,
            self_ns: 3_000_000,
        }];
        let text = render_flame(&rows);
        assert!(text.starts_with("span"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }
}
