//! Global metrics registry: counters, gauges, histograms, quantiles.
//!
//! Metrics are owned by a process-wide [`Registry`] and looked up (or
//! created) by name; callers on hot paths cache the returned `Arc` handle
//! so the name lookup happens once. The two metric kinds that are written
//! from `par_map` workers — [`Counter`] and [`QuantileRing`] — are
//! **lock-sharded**: each thread writes its own shard (a padded atomic or
//! a small mutex-guarded ring), so parallel simulation sweeps never
//! serialise on a shared cache line. Reads (the `/metrics` scrape, the
//! JSONL dump) merge the shards.
//!
//! Exposition formats:
//!
//! * [`Registry::prometheus`] — Prometheus text: `name value`, histogram
//!   `_bucket{le="..."}` lines, quantile `{quantile="0.5"}` lines;
//! * [`Registry::jsonl`] — one JSON object per metric, machine-readable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of write shards for [`Counter`] and [`QuantileRing`].
pub const SHARDS: usize = 16;

/// Pads an atomic to its own cache line so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotonically increasing thread index, assigned at first metric write.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// A monotonically increasing counter, sharded across writer threads.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The merged total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with cumulative Prometheus-style buckets.
pub struct Histogram {
    /// Upper bounds of the buckets (exclusive of the implicit `+Inf`).
    bounds: Vec<f64>,
    /// One count per bound, plus the `+Inf` overflow bucket at the end.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 sum via CAS loop; observations are rare next to reads of the
        // sharded counters, so contention here is irrelevant.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` pairs ending with `(+Inf, total)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            acc += c.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// A bounded ring of recent observations from which quantiles are
/// computed on demand. Sharded per thread: recording is a push into the
/// calling thread's own small mutex-guarded ring, so concurrent writers
/// (HTTP workers, `par_map` threads) never queue on one lock.
pub struct QuantileRing {
    shards: Vec<Mutex<Ring>>,
    shard_cap: usize,
}

#[derive(Default)]
struct Ring {
    buf: Vec<u64>,
    cursor: usize,
}

/// A p50/p95/p99 snapshot over a [`QuantileRing`] window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantileSnapshot {
    /// Samples currently in the window.
    pub samples: usize,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl QuantileRing {
    /// A ring retaining roughly `capacity` recent samples in total.
    pub fn new(capacity: usize) -> Self {
        let shard_cap = capacity.div_ceil(SHARDS).max(1);
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Ring::default())).collect(),
            shard_cap,
        }
    }

    /// Records one sample into the calling thread's shard.
    pub fn record(&self, v: u64) {
        let mut ring = self.shards[thread_shard()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if ring.buf.len() < self.shard_cap {
            ring.buf.push(v);
        } else {
            let cursor = ring.cursor;
            ring.buf[cursor] = v;
            ring.cursor = (cursor + 1) % self.shard_cap;
        }
    }

    /// All samples currently retained, merged across shards (unsorted).
    pub fn samples(&self) -> Vec<u64> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.extend_from_slice(&ring.buf);
        }
        all
    }

    /// The quantile at `p` (0..1) by the nearest-rank method (the value
    /// whose rank is `ceil(n * p)`), 0 on an empty window.
    pub fn quantile(&self, p: f64) -> u64 {
        let mut sorted = self.samples();
        sorted.sort_unstable();
        pick_rank(&sorted, p)
    }

    /// p50/p95/p99 in one merge + sort.
    pub fn snapshot(&self) -> QuantileSnapshot {
        let mut sorted = self.samples();
        sorted.sort_unstable();
        QuantileSnapshot {
            samples: sorted.len(),
            p50: pick_rank(&sorted, 0.50),
            p95: pick_rank(&sorted, 0.95),
            p99: pick_rank(&sorted, 0.99),
        }
    }
}

/// Nearest-rank quantile over a sorted slice: `ceil(n * p)` clamped into
/// `[1, n]`, 0 when empty.
fn pick_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One registered metric.
#[derive(Clone)]
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Quantiles(Arc<QuantileRing>),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
            Entry::Quantiles(_) => "quantiles",
        }
    }
}

/// A named collection of metrics. Use [`global`] for the process-wide
/// instance; fresh instances exist for tests.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Entry>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&self, name: &str, make: impl FnOnce() -> Entry) -> Entry {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Gets or creates a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.entry(name, || Entry::Counter(Arc::new(Counter::default()))) {
            Entry::Counter(c) => c,
            e => panic!("metric `{name}` is a {}, not a counter", e.kind()),
        }
    }

    /// Gets or creates a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.entry(name, || Entry::Gauge(Arc::new(Gauge::default()))) {
            Entry::Gauge(g) => g,
            e => panic!("metric `{name}` is a {}, not a gauge", e.kind()),
        }
    }

    /// Gets or creates a fixed-bucket histogram. The bounds of the first
    /// registration win; later callers share the same buckets.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid, already registered as another kind,
    /// or `bounds` is not strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        match self.entry(name, || Entry::Histogram(Arc::new(Histogram::new(bounds)))) {
            Entry::Histogram(h) => h,
            e => panic!("metric `{name}` is a {}, not a histogram", e.kind()),
        }
    }

    /// Gets or creates a quantile ring. The capacity of the first
    /// registration wins.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn quantiles(&self, name: &str, capacity: usize) -> Arc<QuantileRing> {
        match self.entry(name, || {
            Entry::Quantiles(Arc::new(QuantileRing::new(capacity)))
        }) {
            Entry::Quantiles(q) => q,
            e => panic!("metric `{name}` is a {}, not a quantile ring", e.kind()),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn snapshot(&self) -> Vec<(String, Entry)> {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders every metric as Prometheus text exposition lines.
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, entry) in self.snapshot() {
            match entry {
                Entry::Counter(c) => {
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Entry::Gauge(g) => {
                    out.push_str(&format!("{name} {}\n", fmt_f64(g.get())));
                }
                Entry::Histogram(h) => {
                    for (bound, cum) in h.cumulative() {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            fmt_f64(bound)
                        };
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum())));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
                Entry::Quantiles(q) => {
                    let s = q.snapshot();
                    out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", s.p50));
                    out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", s.p95));
                    out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", s.p99));
                    out.push_str(&format!("{name}_count {}\n", s.samples));
                }
            }
        }
        out
    }

    /// Renders every metric as one JSON object per line.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, entry) in self.snapshot() {
            let mut line = String::from("{\"metric\":\"");
            crate::json_escape_into(&mut line, &name);
            line.push_str("\",\"kind\":\"");
            line.push_str(entry.kind());
            line.push('"');
            match entry {
                Entry::Counter(c) => line.push_str(&format!(",\"value\":{}", c.get())),
                Entry::Gauge(g) => line.push_str(&format!(",\"value\":{}", fmt_f64(g.get()))),
                Entry::Histogram(h) => {
                    line.push_str(&format!(
                        ",\"count\":{},\"sum\":{}",
                        h.count(),
                        fmt_f64(h.sum())
                    ));
                }
                Entry::Quantiles(q) => {
                    let s = q.snapshot();
                    line.push_str(&format!(
                        ",\"samples\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
                        s.samples, s.p50, s.p95, s.p99
                    ));
                }
            }
            line.push_str("}\n");
            out.push_str(&line);
        }
        out
    }
}

/// Formats a float the way the JSON layer does: integral values print
/// without a fraction so expositions stay byte-stable.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Gets or creates a counter in the [`global`] registry. Hot paths should
/// call this once and cache the handle.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Gets or creates a gauge in the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Gets or creates a histogram in the [`global`] registry.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    global().histogram(name, bounds)
}

/// Gets or creates a quantile ring in the [`global`] registry.
pub fn quantiles(name: &str, capacity: usize) -> Arc<QuantileRing> {
    global().quantiles(name, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_shards() {
        let c = Counter::default();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| c.add(10));
            }
        });
        assert_eq!(c.get(), 44);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 5000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5060.5).abs() < 1e-9);
        assert_eq!(
            h.cumulative(),
            vec![(1.0, 1), (10.0, 3), (100.0, 4), (f64::INFINITY, 5)]
        );
    }

    #[test]
    fn quantile_matches_exact_percentiles_single_thread() {
        // One thread writes one shard, so give each shard room for all
        // 100 samples.
        let q = QuantileRing::new(100 * SHARDS);
        for v in 1..=100u64 {
            q.record(v);
        }
        let s = q.snapshot();
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(q.quantile(1.0), 100);
    }

    #[test]
    fn quantile_ring_bounds_memory_and_displaces_old_samples() {
        let q = QuantileRing::new(64);
        // All from one thread: one shard, capacity 64/SHARDS.
        for _ in 0..1000 {
            q.record(1_000_000);
        }
        for _ in 0..1000 {
            q.record(1);
        }
        let s = q.snapshot();
        assert!(s.samples <= 64);
        assert_eq!(s.p99, 1, "old samples should have been displaced");
    }

    #[test]
    fn quantile_ring_wraparound_retains_exactly_the_last_window() {
        // One thread writes one shard; shard capacity is 4, so after ten
        // writes the ring must hold exactly the last four values, with
        // the overwrite evicting oldest-first.
        let q = QuantileRing::new(4 * SHARDS);
        for v in 1..=10u64 {
            q.record(v);
        }
        let mut kept = q.samples();
        kept.sort_unstable();
        assert_eq!(kept, vec![7, 8, 9, 10]);
    }

    #[test]
    fn quantile_ring_concurrent_writers_lose_nothing_under_capacity() {
        // Four writer threads, each recording a disjoint value range.
        // The per-shard capacity covers every writer landing on the same
        // shard (thread→shard assignment is process-global round-robin,
        // so parallel tests can perturb it), hence nothing may displace:
        // the merged window must hold every write exactly once.
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 64;
        let q = QuantileRing::new(SHARDS * (WRITERS * PER_WRITER) as usize);
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        q.record(t * 1_000 + i);
                    }
                });
            }
        });
        let mut all = q.samples();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..WRITERS)
            .flat_map(|t| (0..PER_WRITER).map(move |i| t * 1_000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "no sample may be lost or duplicated");
    }

    #[test]
    fn quantile_ring_snapshot_while_writing_stays_consistent() {
        // Writers push values from a two-element set while the main
        // thread snapshots mid-flight: every snapshot must stay within
        // the capacity bound, keep its percentiles ordered, and report
        // only values that were actually written (a torn read would
        // surface as a stray value or an inverted percentile).
        const PER_WRITER: usize = 400;
        let q = QuantileRing::new(64);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        q.record(if i % 2 == 0 { 10 } else { 20 });
                    }
                });
            }
            for _ in 0..50 {
                let snap = q.snapshot();
                assert!(snap.samples <= 64, "window exceeded capacity: {snap:?}");
                assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99, "{snap:?}");
                for v in [snap.p50, snap.p95, snap.p99] {
                    assert!(
                        v == 0 || v == 10 || v == 20,
                        "snapshot saw a value nobody wrote: {snap:?}"
                    );
                }
            }
        });
        // After the writers join the rings are full: each shard a writer
        // touched holds its full window, and only written values remain.
        let snap = q.snapshot();
        assert!(snap.samples > 0 && snap.samples <= 64, "{snap:?}");
        assert!(q.samples().iter().all(|&v| v == 10 || v == 20));
        assert_eq!(snap.p99, 20, "{snap:?}");
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::new();
        r.counter("a_total").add(1);
        r.counter("a_total").add(2);
        assert_eq!(r.counter("a_total").get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_names() {
        Registry::new().counter("has space");
    }

    #[test]
    fn prometheus_exposition_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c_total").add(7);
        r.gauge("g").set(1.5);
        r.histogram("h", &[10.0]).record(3.0);
        r.quantiles("q_us", 16).record(42);
        let text = r.prometheus();
        assert!(text.contains("c_total 7\n"), "{text}");
        assert!(text.contains("g 1.5\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("h_count 1\n"), "{text}");
        assert!(text.contains("q_us{quantile=\"0.5\"} 42\n"), "{text}");
    }

    #[test]
    fn jsonl_exposition_is_one_object_per_line() {
        let r = Registry::new();
        r.counter("c_total").add(1);
        r.quantiles("q_us", 16).record(5);
        let text = r.jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("{\"metric\":\"c_total\",\"kind\":\"counter\",\"value\":1}"));
        assert!(text.contains("\"p50\":5"));
    }

    #[test]
    fn sharded_counter_is_exact_under_contention() {
        let c = Counter::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
