//! Leveled diagnostics on stderr, filtered by `ARCHDSE_LOG`.
//!
//! [`crate::log!`] replaces bare `eprintln!` across the workspace: each
//! message carries a level (`error`, `warn`, `info`, `debug`) and is
//! emitted only when at or above the configured threshold. The default
//! threshold is [`Level::Warn`], so tests and pipelines stay quiet;
//! `ARCHDSE_LOG=info` (or `debug`) turns progress reporting on, and
//! `ARCHDSE_LOG=off` silences everything.
//!
//! Messages below the threshold cost one relaxed atomic load; the format
//! arguments are never evaluated.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the log threshold
/// (`off|error|warn|info|debug`, default `warn`).
pub const LOG_ENV: &str = "ARCHDSE_LOG";

/// Severity of a [`crate::log!`] message, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or wrong-answer conditions.
    Error = 1,
    /// Suspicious but survivable conditions (the default threshold).
    Warn = 2,
    /// Progress and milestone reporting.
    Info = 3,
    /// High-volume diagnostic detail.
    Debug = 4,
}

impl Level {
    /// The lowercase name (`"warn"` etc.) used in message prefixes.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 0 = unresolved (consult the environment), 1..=4 = a [`Level`]
/// threshold, 5 ([`OFF`]) = nothing passes.
static THRESHOLD: AtomicU8 = AtomicU8::new(0);

const OFF: u8 = 5;

fn resolve() -> u8 {
    let t = match std::env::var(LOG_ENV).as_deref() {
        Ok("off") | Ok("OFF") | Ok("none") => OFF,
        Ok("error") | Ok("ERROR") => Level::Error as u8,
        Ok("warn") | Ok("WARN") => Level::Warn as u8,
        Ok("info") | Ok("INFO") => Level::Info as u8,
        Ok("debug") | Ok("DEBUG") => Level::Debug as u8,
        _ => Level::Warn as u8,
    };
    THRESHOLD.store(t, Ordering::Relaxed);
    t
}

/// Whether messages at `level` currently pass the threshold.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    let t = match THRESHOLD.load(Ordering::Relaxed) {
        0 => resolve(),
        t => t,
    };
    t != OFF && level as u8 <= t
}

/// Overrides the threshold (`None` = off), bypassing `ARCHDSE_LOG`.
pub fn set_level(level: Option<Level>) {
    THRESHOLD.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// Implementation detail of [`crate::log!`]: writes one formatted line
/// to stderr with a `[level]` prefix.
pub fn emit(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {}", level.name(), args);
}

/// Logs one line at the given level: `log!(warn, "fmt {}", x)`.
///
/// The level is a bare identifier (`error`, `warn`, `info`, `debug`).
/// When the level is below the `ARCHDSE_LOG` threshold the format
/// arguments are not evaluated.
#[macro_export]
macro_rules! log {
    (error, $($arg:tt)*) => { $crate::log_at!($crate::log::Level::Error, $($arg)*) };
    (warn, $($arg:tt)*) => { $crate::log_at!($crate::log::Level::Warn, $($arg)*) };
    (info, $($arg:tt)*) => { $crate::log_at!($crate::log::Level::Info, $($arg)*) };
    (debug, $($arg:tt)*) => { $crate::log_at!($crate::log::Level::Debug, $($arg)*) };
}

/// Logs at a runtime [`Level`] value; prefer [`crate::log!`].
#[macro_export]
macro_rules! log_at {
    ($level:expr, $($arg:tt)*) => {
        if $crate::log::level_enabled($level) {
            $crate::log::emit($level, ::std::format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_order_correctly() {
        set_level(Some(Level::Warn));
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));

        set_level(Some(Level::Debug));
        assert!(level_enabled(Level::Debug));

        set_level(None);
        assert!(!level_enabled(Level::Error));

        // Restore the default for other tests in this process.
        set_level(Some(Level::Warn));
    }

    #[test]
    fn below_threshold_skips_format_args() {
        set_level(Some(Level::Warn));
        let mut ran = false;
        crate::log!(debug, "{}", {
            ran = true;
            "x"
        });
        assert!(!ran, "format args must not evaluate below threshold");
        crate::log!(warn, "one warn line from dse-obs tests: {}", 1);
    }
}
