//! Flight recorder: an always-on, fixed-size ring of recent structured
//! events for post-hoc debugging.
//!
//! The serving host is a shared 1-vCPU box where slow or failed requests
//! are hard to reproduce; the flight recorder keeps the last ~2 Ki
//! events (request lifecycle edges, registry/cache lookups, explore
//! round summaries, ingest imports, errors) in memory at all times, so a
//! dump taken *after* an incident still shows what led up to it.
//!
//! Recording is lock-sharded by thread (like
//! [`registry`](crate::registry)'s quantile rings): one event is a
//! sequence-number fetch, a timestamp read and a short critical section
//! on the recording thread's shard — never a global lock. Each shard is
//! a fixed ring, so memory is bounded and old events are overwritten in
//! place. A dump merges the shards and sorts by sequence number,
//! yielding a consistent global order even while writers keep recording.
//!
//! Events carry the **request id** active on the recording thread
//! ([`scope`]/[`set_current`]), which is how a `GET /v1/obs/flight` dump
//! reconstructs one request's reactor → worker → cache/registry chain
//! from interleaved traffic. Id `0` means "not inside any request"
//! (background work, startup, explore worker rounds adopt the
//! submitting request's id instead).
//!
//! Dump triggers, wired up in `dse-serve`: `GET /v1/obs/flight`
//! (on-demand), `SIGUSR1` (via [`request_dump`]; the signal handler only
//! flips an atomic, the reactor loop does the writing), and
//! automatically on worker panic or 5xx (targeted: only the failing
//! request's events, via [`dump_for`]).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of independently locked shards. Eight covers the reactor
/// threads plus worker pool of the default server without cross-thread
/// contention, while keeping a full dump's merge trivial.
const SHARDS: usize = 8;
/// Events retained per shard (~2 Ki total). One event is ~100 bytes, so
/// the whole recorder stays under a few hundred KiB.
const SHARD_CAP: usize = 256;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (1-based, total order across shards).
    pub seq: u64,
    /// Microseconds since the recorder's first use.
    pub ts_us: u64,
    /// Request id active on the recording thread; 0 = none.
    pub request: u64,
    /// Event kind, a short static label like `"accept"` or `"cache"`.
    pub kind: &'static str,
    /// Free-form detail (route, key, outcome, error text).
    pub detail: String,
}

impl FlightEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.detail.len());
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_us\":{},\"request\":{},\"kind\":\"",
            self.seq, self.ts_us, self.request
        ));
        crate::json_escape_into(&mut out, self.kind);
        out.push_str("\",\"detail\":\"");
        crate::json_escape_into(&mut out, &self.detail);
        out.push_str("\"}");
        out
    }
}

/// Fixed-capacity overwrite-oldest ring, one per shard.
#[derive(Debug, Default)]
struct Ring {
    buf: Vec<FlightEvent>,
    cursor: usize,
}

impl Ring {
    fn push(&mut self, e: FlightEvent) {
        if self.buf.len() < SHARD_CAP {
            self.buf.push(e);
        } else {
            self.buf[self.cursor] = e;
        }
        self.cursor = (self.cursor + 1) % SHARD_CAP;
    }
}

static SHARD_RINGS: OnceLock<Vec<Mutex<Ring>>> = OnceLock::new();
static SEQ: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    static CURRENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

fn rings() -> &'static [Mutex<Ring>] {
    SHARD_RINGS.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(Ring::default())).collect())
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
        }
        v
    })
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// The request id active on this thread (0 = none).
pub fn current_request() -> u64 {
    CURRENT_REQUEST.with(|c| c.get())
}

/// Sets this thread's active request id, returning the previous one.
/// Prefer [`scope`] where the extent is lexical.
pub fn set_current(id: u64) -> u64 {
    CURRENT_REQUEST.with(|c| c.replace(id))
}

/// RAII guard restoring the previous request id on drop (see [`scope`]).
#[derive(Debug)]
pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        set_current(self.prev);
    }
}

/// Marks this thread as working on request `id` until the guard drops.
pub fn scope(id: u64) -> RequestScope {
    RequestScope {
        prev: set_current(id),
    }
}

/// Records an event under this thread's active request id.
pub fn event(kind: &'static str, detail: impl Into<String>) {
    event_for(current_request(), kind, detail);
}

/// Records an event under an explicit request id (0 = none).
pub fn event_for(request: u64, kind: &'static str, detail: impl Into<String>) {
    let e = FlightEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed) + 1,
        ts_us: now_us(),
        request,
        kind,
        detail: detail.into(),
    };
    let shard = &rings()[thread_shard()];
    shard.lock().unwrap_or_else(|p| p.into_inner()).push(e);
}

/// Snapshots all retained events, merged and sorted by sequence number.
///
/// Writers on other threads may record while the dump runs; each shard
/// is snapshotted under its own lock, so every returned event is whole
/// and the result is a consistent (if instantaneously stale) view.
pub fn dump() -> Vec<FlightEvent> {
    let mut all: Vec<FlightEvent> = Vec::new();
    for shard in rings() {
        let ring = shard.lock().unwrap_or_else(|p| p.into_inner());
        all.extend(ring.buf.iter().cloned());
    }
    all.sort_unstable_by_key(|e| e.seq);
    all
}

/// [`dump`] filtered to one request id's events.
pub fn dump_for(request: u64) -> Vec<FlightEvent> {
    let mut all = dump();
    all.retain(|e| e.request == request);
    all
}

/// Renders events as JSONL (one [`FlightEvent::to_json_line`] per line,
/// trailing newline when non-empty).
pub fn to_jsonl(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json_line());
        out.push('\n');
    }
    out
}

/// Requests an asynchronous dump (async-signal-safe: one atomic store).
/// The serve reactor polls [`take_dump_request`] and writes the dump to
/// stderr from its own loop.
pub fn request_dump() {
    DUMP_REQUESTED.store(true, Ordering::Release);
}

/// Consumes a pending [`request_dump`], returning whether one was set.
pub fn take_dump_request() -> bool {
    DUMP_REQUESTED.swap(false, Ordering::AcqRel)
}

/// Drops all retained events (test isolation; recording stays enabled).
pub fn clear() {
    for shard in rings() {
        let mut ring = shard.lock().unwrap_or_else(|p| p.into_inner());
        ring.buf.clear();
        ring.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests share it, so each filters by
    // a distinct request id (or unique kind) instead of assuming an
    // empty ring — and tests that assert on retention run serialized,
    // because a parallel test mapped to the same shard can evict events.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn events_carry_thread_request_scope() {
        let _g = serial();
        let _s = scope(771);
        event("test.scope", "inner");
        let mine = dump_for(771);
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].kind, "test.scope");
        assert_eq!(mine[0].detail, "inner");
        drop(_s);
        assert_eq!(current_request(), 0);
    }

    #[test]
    fn scope_nests_and_restores() {
        let outer = scope(101);
        {
            let _inner = scope(202);
            assert_eq!(current_request(), 202);
        }
        assert_eq!(current_request(), 101);
        drop(outer);
    }

    #[test]
    fn dump_is_sorted_by_seq() {
        let _g = serial();
        for i in 0..20 {
            event_for(772, "test.order", format!("e{i}"));
        }
        let all = dump();
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        let mine: Vec<_> = all.iter().filter(|e| e.request == 772).collect();
        assert_eq!(mine.len(), 20);
        assert_eq!(mine[0].detail, "e0");
        assert_eq!(mine[19].detail, "e19");
    }

    #[test]
    fn wraparound_keeps_only_recent() {
        let _g = serial();
        // Everything below runs on one thread, hence one shard: pushing
        // far past SHARD_CAP must retain exactly the newest SHARD_CAP.
        let total = SHARD_CAP * 3;
        for i in 0..total {
            event_for(773, "test.wrap", format!("w{i}"));
        }
        let mine = dump_for(773);
        assert!(mine.len() <= SHARD_CAP);
        // The newest event always survives.
        assert_eq!(mine.last().unwrap().detail, format!("w{}", total - 1));
        // Retained events are the contiguous newest run.
        let first_kept: usize = mine[0].detail[1..].parse().unwrap();
        assert_eq!(mine.len(), total - first_kept);
    }

    #[test]
    fn json_line_escapes_detail() {
        let e = FlightEvent {
            seq: 1,
            ts_us: 2,
            request: 3,
            kind: "err",
            detail: "a\"b\nc".to_string(),
        };
        assert_eq!(
            e.to_json_line(),
            r#"{"seq":1,"ts_us":2,"request":3,"kind":"err","detail":"a\"b\nc"}"#
        );
    }

    #[test]
    fn take_dump_request_consumes() {
        assert!(!take_dump_request());
        request_dump();
        assert!(take_dump_request());
        assert!(!take_dump_request());
    }

    #[test]
    fn concurrent_writers_and_dumps_stay_consistent() {
        let _g = serial();
        // Fixed write counts, not a stop flag: on a 1-vCPU host the
        // dumping thread can otherwise finish before any writer runs.
        const PER_WRITER: usize = 300; // > SHARD_CAP: exercises overwrite
        let writers: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for n in 0..PER_WRITER {
                        event_for(800 + t, "test.conc", format!("t{t}n{n}"));
                    }
                })
            })
            .collect();
        // Dump repeatedly while writers hammer the rings: every snapshot
        // must hold whole events in strictly increasing seq order.
        for _ in 0..50 {
            let snap = dump();
            assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
            for e in &snap {
                assert!(!e.kind.is_empty());
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        // After the writers retire, the newest of their events survives
        // in the final dump (it was the last push to its shard's ring
        // before any later test activity).
        let final_dump = dump();
        assert!(final_dump.iter().any(|e| e.kind == "test.conc"));
        assert!(final_dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
