//! Workspace-wide observability: metrics, spans, leveled logging.
//!
//! Every crate in the workspace answers "where did the time go" and
//! "how often did that happen" through this one zero-dependency layer:
//!
//! * [`registry`] — a global **metrics registry** of named counters,
//!   gauges, fixed-bucket histograms and ring-based quantile estimators.
//!   Counters and quantile rings are lock-sharded by thread so
//!   `par_map` workers never contend on a cache line; the whole registry
//!   renders as Prometheus text ([`registry::Registry::prometheus`]) or
//!   JSONL ([`registry::Registry::jsonl`]).
//! * [`span`] — **structured tracing**: lightweight span trees with
//!   monotonic timing and parent/child nesting that follows work across
//!   the scoped-thread pool in `dse-util` (the pool forwards the caller's
//!   span context to its workers). Spans drain as a JSON span log and
//!   aggregate into a self-time flame table.
//! * [`log`] — **leveled diagnostics** (`error`/`warn`/`info`/`debug`)
//!   via [`log!`], filtered by the `ARCHDSE_LOG` environment variable
//!   (default `warn`), so test output stays quiet and greppable.
//! * [`flight`] — an always-on **flight recorder**: a lock-sharded
//!   fixed-size ring of recent structured events (request lifecycle,
//!   cache/registry lookups, explore rounds, errors), dumped on demand
//!   to debug incidents that cannot be reproduced.
//!
//! # Enablement
//!
//! The registry and logging are always live (both are cheap: sharded
//! atomics and one level compare). Span *recording* is off by default and
//! turned on either by `ARCHDSE_OBS=1` or programmatically with
//! [`set_enabled`] (how the CLI's `--obs json|pretty` flag works); a
//! disabled [`span!`] costs one relaxed atomic load and allocates
//! nothing.
//!
//! # Examples
//!
//! ```
//! use dse_obs as obs;
//!
//! obs::set_enabled(true);
//! {
//!     let _outer = obs::span!("demo.outer");
//!     let _inner = obs::span!("demo.inner", items = 3);
//! }
//! let spans = obs::span::take_spans();
//! assert_eq!(spans.len(), 2);
//!
//! obs::registry::counter("demo_events_total").add(2);
//! let text = obs::registry::global().prometheus();
//! assert!(text.contains("demo_events_total 2"));
//! ```

#![warn(missing_docs)]

pub mod flight;
pub mod log;
pub mod registry;
pub mod span;

pub use flight::FlightEvent;
pub use registry::{counter, gauge, histogram, quantiles, Registry};
pub use span::{FlameRow, Span, SpanRecord};

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable turning span recording on (`1`/`true`).
pub const OBS_ENV: &str = "ARCHDSE_OBS";

/// Tri-state enablement: 0 = unresolved (consult the environment),
/// 1 = forced off, 2 = forced on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether span recording is on (`ARCHDSE_OBS=1` or [`set_enabled`]).
///
/// The environment is consulted once, on the first call that finds no
/// programmatic override.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = matches!(
                std::env::var(OBS_ENV).as_deref(),
                Ok("1") | Ok("true") | Ok("TRUE")
            );
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces span recording on or off, overriding `ARCHDSE_OBS`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Escapes `s` as the inside of a JSON string literal (no quotes added).
///
/// The observability layer has no JSON dependency by design — span logs
/// and the JSONL exposition only ever *write* JSON, and this is the one
/// primitive writing needs.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_overrides() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn json_escape_handles_specials() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
