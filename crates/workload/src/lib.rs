//! Synthetic workload substrate standing in for SPEC CPU 2000 and MiBench.
//!
//! The paper evaluates on SPEC CPU 2000 (reference inputs, SimPoint phases of
//! 10 M instructions) and MiBench (small inputs, run to completion). Neither
//! suite can be redistributed, and running them requires the original
//! binaries, inputs and a full ISA-level simulator. Following the
//! substitution rule in `DESIGN.md`, this crate generates **synthetic
//! instruction traces** from per-program statistical models instead.
//!
//! What the paper's method actually consumes from a benchmark is the *shape
//! of its response surface* over the 13-parameter design space. That shape
//! is determined by a handful of trace-level properties, each of which the
//! profile controls directly:
//!
//! * instruction mix (functional-unit and LSQ pressure),
//! * register dependency distances (extractable ILP → width/ROB/IQ/RF
//!   sensitivity),
//! * static code footprint and branch behaviour (I-cache and predictor
//!   sensitivity),
//! * data footprint, locality skew and pointer-chasing (D-cache/L2/memory
//!   sensitivity).
//!
//! Each named profile ([`suites::spec2000`], [`suites::mibench`]) fixes these
//! to make the corresponding program behave like its namesake *relative to
//! the rest of the suite* — e.g. `art` and `mcf` are strongly memory-bound
//! outliers, `gcc` has a large code footprint, `parser` has a narrow dynamic
//! range — which is exactly the structure the paper's clustering (Fig 5) and
//! error analysis (Fig 11) rely on.
//!
//! # Examples
//!
//! ```
//! use dse_workload::{suites, TraceGenerator};
//!
//! let profiles = suites::spec2000();
//! let applu = profiles.iter().find(|p| p.name == "applu").unwrap();
//! let trace = TraceGenerator::new(applu).generate(1_000);
//! assert_eq!(trace.len(), 1_000);
//! ```

#![warn(missing_docs)]

pub mod profile;
pub mod suites;
pub mod trace;

pub use profile::{intern_name, BranchClass, Profile, Suite};
pub use suites::{catalog, CatalogEntry};
pub use trace::{meta, Instr, InstrKind, Trace, TraceGenerator};
