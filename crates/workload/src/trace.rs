//! Synthetic static programs and dynamic instruction traces.
//!
//! A [`TraceGenerator`] first materialises a *static program* from a
//! [`Profile`] — basic blocks of typed instructions with fixed dependency
//! shapes, terminated by branches with assigned behaviour classes — and then
//! walks it to emit a deterministic dynamic [`Trace`]. Instruction-cache and
//! branch-predictor behaviour therefore emerge from real PC reuse, not from
//! injected miss rates.

use crate::profile::{BranchClass, Profile};
use dse_rng::dist::{Categorical, Zipf};
use dse_rng::Xoshiro256;

/// Dynamic instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/sub/compare.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide/sqrt.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl InstrKind {
    /// All instruction kinds.
    pub const ALL: [InstrKind; 9] = [
        InstrKind::IntAlu,
        InstrKind::IntMul,
        InstrKind::IntDiv,
        InstrKind::FpAlu,
        InstrKind::FpMul,
        InstrKind::FpDiv,
        InstrKind::Load,
        InstrKind::Store,
        InstrKind::Branch,
    ];

    /// Whether this kind accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, InstrKind::Load | InstrKind::Store)
    }

    /// Whether this kind produces a register result.
    pub fn has_dest(self) -> bool {
        !matches!(self, InstrKind::Store | InstrKind::Branch)
    }

    /// Functional-unit class: 0 int ALU / branch / memory, 1 int mul-div,
    /// 2 FP ALU, 3 FP mul-div (Table 2b's width-scaled unit pools).
    pub fn fu_class(self) -> usize {
        match self {
            InstrKind::IntAlu | InstrKind::Branch | InstrKind::Load | InstrKind::Store => 0,
            InstrKind::IntMul | InstrKind::IntDiv => 1,
            InstrKind::FpAlu => 2,
            InstrKind::FpMul | InstrKind::FpDiv => 3,
        }
    }
}

/// Packed per-instruction decode byte, precomputed once per trace so the
/// simulator's hot loop reads one byte instead of matching on
/// [`InstrKind`] repeatedly. See [`meta`] for the bit layout.
pub mod meta {
    use super::InstrKind;

    /// Bits 0–1: functional-unit class ([`InstrKind::fu_class`]).
    pub const FU_MASK: u8 = 0b11;
    /// Bit 2: accesses data memory.
    pub const IS_MEM: u8 = 1 << 2;
    /// Bit 3: produces a register result.
    pub const HAS_DEST: u8 = 1 << 3;
    /// Bit 4: conditional branch.
    pub const IS_BRANCH: u8 = 1 << 4;

    /// Packs the decode byte for one instruction kind.
    pub fn pack(kind: InstrKind) -> u8 {
        (kind.fu_class() as u8)
            | if kind.is_mem() { IS_MEM } else { 0 }
            | if kind.has_dest() { HAS_DEST } else { 0 }
            | if kind == InstrKind::Branch {
                IS_BRANCH
            } else {
                0
            }
    }
}

/// One dynamic instruction of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instr {
    /// Instruction class.
    pub kind: InstrKind,
    /// Distance (in dynamic instructions) back to the producer of the first
    /// source operand; 0 means no register dependency.
    pub src1: u32,
    /// Same for the second source operand.
    pub src2: u32,
    /// Instruction byte address (4-byte instructions).
    pub pc: u32,
    /// Effective address for loads/stores (0 otherwise).
    pub addr: u64,
    /// Branch outcome (false for non-branches).
    pub taken: bool,
    /// Branch target byte address (0 for non-branches).
    pub target: u32,
}

/// A dynamic instruction trace for one benchmark.
///
/// Stored as a structure of arrays: each [`Instr`] field lives in its own
/// column, plus a precomputed [`meta`] decode byte per instruction. The
/// simulator borrows the columns immutably, so one trace generated per
/// benchmark is shared by every sweep simulation, and the hot loop touches
/// only the columns a stage needs (issue reads dependencies and the decode
/// byte, fetch reads PCs — never the full 40-byte instruction record).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Benchmark name.
    pub name: String,
    kinds: Vec<InstrKind>,
    src1: Vec<u32>,
    src2: Vec<u32>,
    pcs: Vec<u32>,
    addrs: Vec<u64>,
    takens: Vec<bool>,
    targets: Vec<u32>,
    metas: Vec<u8>,
}

impl Trace {
    /// Builds a trace from instructions in program (commit) order.
    pub fn new(name: impl Into<String>, instrs: impl IntoIterator<Item = Instr>) -> Self {
        let it = instrs.into_iter();
        let mut t = Self::with_capacity(name, it.size_hint().0);
        for ins in it {
            t.push(ins);
        }
        t
    }

    /// An empty trace with room for `cap` instructions.
    pub fn with_capacity(name: impl Into<String>, cap: usize) -> Self {
        Self {
            name: name.into(),
            kinds: Vec::with_capacity(cap),
            src1: Vec::with_capacity(cap),
            src2: Vec::with_capacity(cap),
            pcs: Vec::with_capacity(cap),
            addrs: Vec::with_capacity(cap),
            takens: Vec::with_capacity(cap),
            targets: Vec::with_capacity(cap),
            metas: Vec::with_capacity(cap),
        }
    }

    /// Appends one instruction, deriving its decode byte.
    pub fn push(&mut self, ins: Instr) {
        self.kinds.push(ins.kind);
        self.src1.push(ins.src1);
        self.src2.push(ins.src2);
        self.pcs.push(ins.pc);
        self.addrs.push(ins.addr);
        self.takens.push(ins.taken);
        self.targets.push(ins.target);
        self.metas.push(meta::pack(ins.kind));
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The instruction at position `i`, reassembled from the columns.
    pub fn get(&self, i: usize) -> Instr {
        Instr {
            kind: self.kinds[i],
            src1: self.src1[i],
            src2: self.src2[i],
            pc: self.pcs[i],
            addr: self.addrs[i],
            taken: self.takens[i],
            target: self.targets[i],
        }
    }

    /// Iterates the instructions in program order (by value, reassembled).
    pub fn iter(&self) -> impl Iterator<Item = Instr> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Instruction-kind column.
    pub fn kinds(&self) -> &[InstrKind] {
        &self.kinds
    }

    /// First-source dependency-distance column (0 = no dependency).
    pub fn src1s(&self) -> &[u32] {
        &self.src1
    }

    /// Second-source dependency-distance column.
    pub fn src2s(&self) -> &[u32] {
        &self.src2
    }

    /// Instruction-address column.
    pub fn pcs(&self) -> &[u32] {
        &self.pcs
    }

    /// Effective-address column (0 for non-memory instructions).
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Branch-outcome column (false for non-branches).
    pub fn takens(&self) -> &[bool] {
        &self.takens
    }

    /// Branch-target column (0 for non-branches).
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Precomputed per-instruction decode bytes (see [`meta`]).
    pub fn metas(&self) -> &[u8] {
        &self.metas
    }

    /// Dynamic count of each instruction kind, indexed by position in
    /// [`InstrKind::ALL`].
    pub fn kind_histogram(&self) -> [u64; 9] {
        let mut h = [0u64; 9];
        for &kind in &self.kinds {
            let idx = InstrKind::ALL.iter().position(|&k| k == kind).unwrap();
            h[idx] += 1;
        }
        h
    }
}

/// Bytes per (synthetic) instruction.
const INSTR_BYTES: u32 = 4;
/// Base address of the code segment.
const CODE_BASE: u32 = 0x0040_0000;
/// Base addresses of the three data regions.
const HOT_BASE: u64 = 0x1000_0000;
const STREAM_BASE: u64 = 0x2000_0000;
const RAND_BASE: u64 = 0x3000_0000;
/// Granularity of hot-set Zipf ranks in bytes.
const HOT_BLOCK: u64 = 64;
/// Maximum number of distinct hot-set ranks (bounds the Zipf CDF size).
const MAX_HOT_RANKS: usize = 65_536;

#[derive(Debug, Clone)]
struct StaticInstr {
    kind: InstrKind,
    d1: u32,
    d2: u32,
    chase: bool,
}

#[derive(Debug, Clone)]
struct StaticBlock {
    /// Index of the first instruction in the flat static instruction array.
    first: usize,
    /// Number of instructions including the terminating branch.
    len: usize,
    /// Behaviour class of the terminating branch.
    class: BranchClass,
    /// Successor block when the branch is taken.
    taken_target: usize,
}

#[derive(Debug, Clone, Default)]
struct BranchState {
    loop_count: u32,
    pattern_pos: u8,
}

/// Deterministic generator of dynamic traces for one [`Profile`].
///
/// # Examples
///
/// ```
/// use dse_workload::{Profile, Suite, TraceGenerator};
///
/// let profile = Profile::template("demo", Suite::SpecCpu2000, 7);
/// let trace = TraceGenerator::new(&profile).generate(500);
/// assert_eq!(trace.len(), 500);
/// // Regenerating is bit-identical.
/// assert_eq!(TraceGenerator::new(&profile).generate(500), trace);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: Profile,
    instrs: Vec<StaticInstr>,
    blocks: Vec<StaticBlock>,
    hot_zipf: Zipf,
    region_choice: Categorical,
    hot_bytes: u64,
    data_bytes: u64,
}

impl TraceGenerator {
    /// Builds the static program for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`Profile::validate`]; canonical suite
    /// profiles always validate (enforced by tests).
    pub fn new(profile: &Profile) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("profile must be valid: {e}"));
        let mut rng = Xoshiro256::seed_from(profile.seed ^ 0x5741_4C4B); // "WALK"

        let kind_dist = Categorical::new(&[
            profile.w_int_alu,
            profile.w_int_mul,
            profile.w_int_div,
            profile.w_fp_alu,
            profile.w_fp_mul,
            profile.w_fp_div,
            profile.w_load,
            profile.w_store,
        ])
        .expect("validated profile has a usable instruction mix");
        const BODY_KINDS: [InstrKind; 8] = [
            InstrKind::IntAlu,
            InstrKind::IntMul,
            InstrKind::IntDiv,
            InstrKind::FpAlu,
            InstrKind::FpMul,
            InstrKind::FpDiv,
            InstrKind::Load,
            InstrKind::Store,
        ];

        let n_static = (profile.code_kb as usize * 1024) / INSTR_BYTES as usize;
        let mut instrs = Vec::with_capacity(n_static);
        let mut blocks = Vec::new();

        while instrs.len() + 2 < n_static {
            // Block body length: mean block_size including the branch.
            let body =
                sample_block_body(&mut rng, profile.block_size).min(n_static - instrs.len() - 1);
            let first = instrs.len();
            for _ in 0..body {
                let kind = BODY_KINDS[kind_dist.sample(&mut rng)];
                let chase = kind == InstrKind::Load && rng.next_bool(profile.chase_frac);
                let (d1, d2) = sample_deps(&mut rng, profile);
                instrs.push(StaticInstr {
                    kind,
                    d1,
                    d2,
                    chase,
                });
            }
            // Terminating branch: depends on a recent value (its condition).
            let (d1, _) = sample_deps(&mut rng, profile);
            instrs.push(StaticInstr {
                kind: InstrKind::Branch,
                d1: d1.max(1),
                d2: 0,
                chase: false,
            });
            let class = sample_branch_class(&mut rng, profile);
            blocks.push(StaticBlock {
                first,
                len: body + 1,
                class,
                taken_target: 0, // fixed up below once the block count is known
            });
        }
        assert!(!blocks.is_empty(), "static program must have blocks");

        let n_blocks = blocks.len();
        for (i, b) in blocks.iter_mut().enumerate() {
            b.taken_target = pick_taken_target(&mut rng, i, n_blocks, b.class);
        }

        let data_bytes = profile.data_kb as u64 * 1024;
        let hot_bytes = ((data_bytes as f64 * profile.hot_frac) as u64).max(1024);
        let hot_ranks = ((hot_bytes / HOT_BLOCK) as usize).clamp(16, MAX_HOT_RANKS);
        let hot_zipf = Zipf::new(hot_ranks, profile.zipf_s);
        let region_choice = Categorical::new(&[profile.w_hot, profile.w_stream, profile.w_rand])
            .expect("validated profile has usable region weights");

        Self {
            profile: profile.clone(),
            instrs,
            blocks,
            hot_zipf,
            region_choice,
            hot_bytes,
            data_bytes,
        }
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Number of static instructions (code footprint / 4 bytes).
    pub fn static_len(&self) -> usize {
        self.instrs.len()
    }

    /// Generates a dynamic trace of exactly `len` instructions.
    pub fn generate(&self, len: usize) -> Trace {
        let _span = dse_obs::span!("trace.generate", program = self.profile.name, len = len);
        {
            use dse_obs::registry::Counter;
            use std::sync::{Arc, OnceLock};
            static TRACES: OnceLock<Arc<Counter>> = OnceLock::new();
            TRACES
                .get_or_init(|| dse_obs::counter("dse_workload_traces_total"))
                .inc();
        }
        let mut rng = Xoshiro256::seed_from(self.profile.seed ^ 0x5452_4143); // "TRAC"
        let mut out = Trace::with_capacity(self.profile.name.to_string(), len);
        let mut branch_state = vec![BranchState::default(); self.blocks.len()];
        let mut block = 0usize;
        let mut stream_ptr: u64 = 0;
        let mut last_load: Option<usize> = None;

        while out.len() < len {
            let b = &self.blocks[block];
            let remaining = len - out.len();
            let take = b.len.min(remaining);
            for i in 0..take {
                let s = &self.instrs[b.first + i];
                let pc = CODE_BASE + ((b.first + i) as u32) * INSTR_BYTES;
                let pos = out.len();
                let is_branch = s.kind == InstrKind::Branch;
                let (taken, target) = if is_branch {
                    let taken = self.branch_outcome(&mut rng, block, &mut branch_state[block]);
                    let target_block = &self.blocks[b.taken_target];
                    let target_pc = CODE_BASE + (target_block.first as u32) * INSTR_BYTES;
                    (taken, target_pc)
                } else {
                    (false, 0)
                };
                let addr = if s.kind.is_mem() {
                    self.gen_address(&mut rng, s.chase, &mut stream_ptr)
                } else {
                    0
                };
                // Clamp static dependency distances to the instructions that
                // actually exist; pointer-chasing loads instead depend on the
                // most recent dynamic load.
                let (src1, src2) = if s.chase {
                    let d = last_load.map_or(0, |lp| (pos - lp) as u32);
                    (d, clamp_dep(s.d2, pos))
                } else {
                    (clamp_dep(s.d1, pos), clamp_dep(s.d2, pos))
                };
                if s.kind == InstrKind::Load {
                    last_load = Some(pos);
                }
                out.push(Instr {
                    kind: s.kind,
                    src1,
                    src2,
                    pc,
                    addr,
                    taken,
                    target,
                });
            }
            // Follow the branch (the block's last instruction) if it was
            // emitted in full; otherwise we filled the trace mid-block.
            if take == b.len {
                let taken = out.takens().last().copied().unwrap_or(false);
                block = if taken {
                    b.taken_target
                } else {
                    (block + 1) % self.blocks.len()
                };
                // Rarely teleport to another routine (call/return). Most
                // calls land in the hot code region, concentrating dynamic
                // execution the way real programs do while the tail still
                // touches the whole footprint.
                if rng.next_bool(1.0 / 96.0) {
                    block = random_call_target(&mut rng, self.blocks.len());
                }
            }
        }

        out
    }

    fn branch_outcome(&self, rng: &mut Xoshiro256, block: usize, state: &mut BranchState) -> bool {
        match self.blocks[block].class {
            BranchClass::Biased(p) => rng.next_bool(p),
            BranchClass::Loop(trip) => {
                state.loop_count += 1;
                if state.loop_count >= trip.max(1) {
                    state.loop_count = 0;
                    false
                } else {
                    true
                }
            }
            BranchClass::Pattern(period) => {
                let period = period.max(2);
                state.pattern_pos = (state.pattern_pos + 1) % period;
                // Repeating pattern: taken for the first half of the period.
                state.pattern_pos < period / 2
            }
            BranchClass::Random(p) => rng.next_bool(p),
        }
    }

    fn gen_address(&self, rng: &mut Xoshiro256, chase: bool, stream_ptr: &mut u64) -> u64 {
        if chase {
            // Pointer chasing scatters over the whole footprint.
            return RAND_BASE + (rng.next_range(self.data_bytes) & !7);
        }
        match self.region_choice.sample(rng) {
            0 => {
                let rank = self.hot_zipf.sample(rng) as u64;
                let offset = (rank * HOT_BLOCK) % self.hot_bytes + (rng.next_range(HOT_BLOCK) & !7);
                HOT_BASE + offset
            }
            1 => {
                // Unit-stride array walk (8-byte elements): several
                // consecutive accesses per cache line, as in real loops.
                // The streamed arrays are an eighth of the footprint
                // (capped at 2 MB) and are re-traversed repeatedly, so for
                // mid-sized programs they become L2-resident while the
                // largest programs still overwhelm every cache level.
                let region = (self.data_bytes / 8).clamp(4096, 2 * 1024 * 1024);
                *stream_ptr = (*stream_ptr + 8) % region;
                STREAM_BASE + *stream_ptr
            }
            _ => RAND_BASE + (rng.next_range(self.data_bytes) & !7),
        }
    }
}

fn clamp_dep(d: u32, pos: usize) -> u32 {
    d.min(pos as u32)
}

fn sample_block_body(rng: &mut Xoshiro256, mean_block: f64) -> usize {
    // Body = block minus the branch; at least one body instruction.
    let mean_body = (mean_block - 1.0).max(1.0);
    let p = 1.0 / mean_body;
    (1 + dse_rng::dist::geometric(rng, p.clamp(0.02, 1.0)) as usize).min(64)
}

fn sample_deps(rng: &mut Xoshiro256, profile: &Profile) -> (u32, u32) {
    let one = |rng: &mut Xoshiro256| -> u32 {
        if rng.next_bool(profile.dep_p) {
            (1 + dse_rng::dist::geometric(rng, profile.dep_decay)).min(64) as u32
        } else {
            0
        }
    };
    (one(rng), one(rng))
}

fn sample_branch_class(rng: &mut Xoshiro256, profile: &Profile) -> BranchClass {
    let u = rng.next_f64();
    if u < profile.br_biased {
        // Half the biased branches are biased not-taken.
        if rng.next_bool(0.5) {
            BranchClass::Biased(profile.bias_p)
        } else {
            BranchClass::Biased(1.0 - profile.bias_p)
        }
    } else if u < profile.br_biased + profile.br_loop {
        let trip = (1.0 + dse_rng::dist::exponential(rng, 1.0 / profile.loop_mean)).round();
        BranchClass::Loop(trip.clamp(2.0, 10_000.0) as u32)
    } else if u < profile.br_biased + profile.br_loop + profile.br_pattern {
        BranchClass::Pattern(2 + rng.next_range(6) as u8)
    } else {
        BranchClass::Random(0.3 + 0.4 * rng.next_f64())
    }
}

/// Call-like control transfers: 85 % land in the hot region (the first
/// twelfth of the static program), the rest anywhere.
fn random_call_target(rng: &mut Xoshiro256, n_blocks: usize) -> usize {
    let hot = (n_blocks / 12).max(1);
    if rng.next_bool(0.85) {
        rng.next_index(hot)
    } else {
        rng.next_index(n_blocks)
    }
}

fn pick_taken_target(
    rng: &mut Xoshiro256,
    block: usize,
    n_blocks: usize,
    class: BranchClass,
) -> usize {
    match class {
        BranchClass::Loop(_) => {
            // Loop back-edge: jump a short distance backwards.
            let span = rng.next_range(8) as usize + 1;
            block.saturating_sub(span)
        }
        _ => {
            // Non-loop taken branches jump forward (if/else skips), so the
            // walk always makes progress and cannot be absorbed into a
            // static cycle; occasionally a far jump models a call, biased
            // toward the hot code region as in real programs (a few
            // routines dominate dynamic execution).
            if rng.next_bool(0.9) {
                let span = 1 + rng.next_range(16) as usize;
                (block + span) % n_blocks
            } else {
                random_call_target(rng, n_blocks)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Suite;

    fn profile() -> Profile {
        Profile::template("test", Suite::SpecCpu2000, 42)
    }

    #[test]
    fn generates_exact_length() {
        let g = TraceGenerator::new(&profile());
        for len in [1, 7, 100, 5_000] {
            assert_eq!(g.generate(len).len(), len);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = TraceGenerator::new(&profile()).generate(2_000);
        let g2 = TraceGenerator::new(&profile()).generate(2_000);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p2 = profile();
        p2.seed = 43;
        let a = TraceGenerator::new(&profile()).generate(1_000);
        let b = TraceGenerator::new(&p2).generate(1_000);
        assert_ne!(a, b);
    }

    #[test]
    fn static_footprint_matches_code_kb() {
        let p = profile();
        let g = TraceGenerator::new(&p);
        let expected = p.code_kb as usize * 1024 / 4;
        // Block construction stops within two instructions of the target.
        assert!(g.static_len() <= expected);
        assert!(g.static_len() >= expected - 64);
    }

    #[test]
    fn branch_fraction_tracks_block_size() {
        let p = profile();
        let t = TraceGenerator::new(&p).generate(50_000);
        let branches = t
            .kinds()
            .iter()
            .filter(|&&k| k == InstrKind::Branch)
            .count();
        let frac = branches as f64 / t.len() as f64;
        let expect = p.branch_fraction();
        assert!(
            (frac - expect).abs() < 0.05,
            "branch fraction {frac} vs expected {expect}"
        );
    }

    #[test]
    fn memory_fraction_tracks_mix() {
        let p = profile();
        let t = TraceGenerator::new(&p).generate(50_000);
        let mem = t.kinds().iter().filter(|k| k.is_mem()).count();
        let frac = mem as f64 / t.len() as f64;
        let expect = p.memory_fraction() * (1.0 - p.branch_fraction());
        assert!(
            (frac - expect).abs() < 0.06,
            "mem fraction {frac} vs expected {expect}"
        );
    }

    #[test]
    fn deps_never_reach_before_trace_start() {
        let t = TraceGenerator::new(&profile()).generate(200);
        for (i, ins) in t.iter().enumerate() {
            assert!(ins.src1 as usize <= i, "src1 at {i}");
            assert!(ins.src2 as usize <= i, "src2 at {i}");
        }
    }

    #[test]
    fn mem_ops_have_addresses_others_do_not() {
        let t = TraceGenerator::new(&profile()).generate(5_000);
        for ins in t.iter() {
            if ins.kind.is_mem() {
                assert_ne!(ins.addr, 0);
            } else {
                assert_eq!(ins.addr, 0);
            }
        }
    }

    #[test]
    fn branches_have_targets() {
        let t = TraceGenerator::new(&profile()).generate(5_000);
        for ins in t.iter() {
            if ins.kind == InstrKind::Branch {
                assert!(ins.target >= CODE_BASE);
            } else {
                assert_eq!(ins.target, 0);
            }
        }
    }

    #[test]
    fn pcs_stay_within_code_footprint() {
        let p = profile();
        let t = TraceGenerator::new(&p).generate(20_000);
        let code_end = CODE_BASE + p.code_kb * 1024;
        for ins in t.iter() {
            assert!(ins.pc >= CODE_BASE && ins.pc < code_end);
        }
    }

    #[test]
    fn bigger_footprint_spreads_addresses() {
        let mut small = profile();
        small.data_kb = 64;
        small.name = "small";
        let mut big = profile();
        big.data_kb = 16_384;
        big.name = "big";
        let span = |p: &Profile| {
            let t = TraceGenerator::new(p).generate(50_000);
            let addrs: Vec<u64> = t
                .iter()
                .filter(|i| i.kind.is_mem())
                .map(|i| i.addr)
                .collect();
            let lines: std::collections::HashSet<u64> = addrs.iter().map(|a| a / 64).collect();
            lines.len()
        };
        let (s, b) = (span(&small), span(&big));
        assert!(b as f64 > s as f64 * 1.5, "big {b} vs small {s}");
    }

    #[test]
    fn kind_histogram_sums_to_len() {
        let t = TraceGenerator::new(&profile()).generate(3_000);
        let h = t.kind_histogram();
        assert_eq!(h.iter().sum::<u64>(), 3_000);
    }

    #[test]
    fn loop_branch_state_produces_mostly_taken() {
        // A profile with only loop branches should have taken rate ≈
        // (trip-1)/trip, i.e. clearly above 50 %.
        let mut p = profile();
        p.br_biased = 0.0;
        p.br_loop = 1.0;
        p.br_pattern = 0.0;
        p.br_random = 0.0;
        p.loop_mean = 10.0;
        let t = TraceGenerator::new(&p).generate(30_000);
        let (taken, total) = t
            .iter()
            .filter(|i| i.kind == InstrKind::Branch)
            .fold((0u32, 0u32), |(tk, tot), i| (tk + i.taken as u32, tot + 1));
        let rate = taken as f64 / total as f64;
        assert!(rate > 0.6, "loop taken rate {rate}");
    }
}
