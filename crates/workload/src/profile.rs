//! Per-program statistical profiles driving the synthetic trace generator.

use dse_util::json::{FromJson, Json, JsonError, ToJson};

/// Benchmark suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2000 stand-ins (26 programs).
    SpecCpu2000,
    /// MiBench stand-ins (19 programs; ghostscript omitted as in the paper).
    MiBench,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::SpecCpu2000 => write!(f, "SPEC CPU 2000"),
            Suite::MiBench => write!(f, "MiBench"),
        }
    }
}

impl ToJson for Suite {
    fn to_json(&self) -> Json {
        // Variant-name strings match serde's external tagging, keeping old
        // dataset cache files readable.
        let name = match self {
            Suite::SpecCpu2000 => "SpecCpu2000",
            Suite::MiBench => "MiBench",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for Suite {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str()? {
            "SpecCpu2000" => Ok(Suite::SpecCpu2000),
            "MiBench" => Ok(Suite::MiBench),
            other => Err(JsonError::msg(format!("unknown suite `{other}`"))),
        }
    }
}

/// Dynamic behaviour class of a static branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchClass {
    /// Taken with a fixed probability (highly predictable when biased).
    Biased(f64),
    /// Loop back-edge: taken `trip - 1` times, then not taken once.
    Loop(u32),
    /// History-correlated: outcome follows a short repeating pattern,
    /// predictable by a global-history predictor with enough table space.
    Pattern(u8),
    /// Data-dependent, effectively random with the given taken rate.
    Random(f64),
}

/// Statistical model of one benchmark program.
///
/// All fields are public so that tests and ablation experiments can derive
/// variants; use [`Profile::validate`] after hand-editing. The canonical
/// instances live in [`crate::suites`].
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Program name (matches the paper's benchmark names).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Base seed for the static program and dynamic trace (deterministic
    /// per profile).
    pub seed: u64,

    // --- instruction mix (relative weights of non-branch instructions) ---
    /// Integer ALU weight.
    pub w_int_alu: f64,
    /// Integer multiply weight.
    pub w_int_mul: f64,
    /// Integer divide weight.
    pub w_int_div: f64,
    /// Floating-point ALU weight.
    pub w_fp_alu: f64,
    /// Floating-point multiply weight.
    pub w_fp_mul: f64,
    /// Floating-point divide weight.
    pub w_fp_div: f64,
    /// Load weight.
    pub w_load: f64,
    /// Store weight.
    pub w_store: f64,

    // --- control flow ---
    /// Mean basic-block size in instructions (the last instruction of each
    /// block is a branch, so branch frequency ≈ 1 / block_size).
    pub block_size: f64,
    /// Static code footprint in KB (4 bytes per instruction).
    pub code_kb: u32,
    /// Fraction of branches that are strongly biased.
    pub br_biased: f64,
    /// Fraction of branches that are loop back-edges.
    pub br_loop: f64,
    /// Fraction of branches following a short repeating pattern.
    pub br_pattern: f64,
    /// Fraction of branches that are data-dependent (random); the remainder
    /// after biased/loop/pattern is also treated as random.
    pub br_random: f64,
    /// Taken probability of biased branches (e.g. 0.97).
    pub bias_p: f64,
    /// Mean loop trip count for loop branches.
    pub loop_mean: f64,

    // --- data dependencies ---
    /// Probability that each source operand slot of an instruction carries
    /// a true dependency on an earlier instruction.
    pub dep_p: f64,
    /// Geometric parameter of the dependency-distance distribution; larger
    /// values give shorter distances (longer chains, lower ILP).
    pub dep_decay: f64,

    // --- memory behaviour ---
    /// Total data footprint in KB.
    pub data_kb: u32,
    /// Fraction of the footprint forming the hot working set.
    pub hot_frac: f64,
    /// Zipf exponent of accesses within the hot set (higher = more skewed,
    /// friendlier to small caches).
    pub zipf_s: f64,
    /// Relative weight of hot-set accesses.
    pub w_hot: f64,
    /// Relative weight of streaming (sequential) accesses.
    pub w_stream: f64,
    /// Relative weight of scattered accesses over the full footprint.
    pub w_rand: f64,
    /// Fraction of loads whose address depends on the previous load
    /// (pointer chasing — serialises the memory pipeline, as in `mcf`).
    pub chase_frac: f64,
}

/// Error returned by [`Profile::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidProfileError {
    /// Name of the offending profile.
    pub profile: String,
    /// Description of the violated constraint.
    pub reason: String,
}

impl std::fmt::Display for InvalidProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid profile {}: {}", self.profile, self.reason)
    }
}

impl std::error::Error for InvalidProfileError {}

impl Profile {
    /// Checks that all fields are within their meaningful ranges.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), InvalidProfileError> {
        let fail = |reason: &str| {
            Err(InvalidProfileError {
                profile: self.name.to_string(),
                reason: reason.to_string(),
            })
        };
        let weights = [
            self.w_int_alu,
            self.w_int_mul,
            self.w_int_div,
            self.w_fp_alu,
            self.w_fp_mul,
            self.w_fp_div,
            self.w_load,
            self.w_store,
        ];
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return fail("instruction-mix weight negative or non-finite");
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return fail("instruction mix sums to zero");
        }
        if !(2.0..=64.0).contains(&self.block_size) {
            return fail("block_size outside [2, 64]");
        }
        if self.code_kb == 0 || self.code_kb > 4096 {
            return fail("code_kb outside (0, 4096]");
        }
        let frac_fields = [
            ("br_biased", self.br_biased),
            ("br_loop", self.br_loop),
            ("br_pattern", self.br_pattern),
            ("br_random", self.br_random),
            ("bias_p", self.bias_p),
            ("dep_p", self.dep_p),
            ("hot_frac", self.hot_frac),
            ("chase_frac", self.chase_frac),
        ];
        for (name, v) in frac_fields {
            if !(0.0..=1.0).contains(&v) {
                return fail(&format!("{name} outside [0, 1]"));
            }
        }
        if self.br_biased + self.br_loop + self.br_pattern + self.br_random > 1.0 + 1e-9 {
            return fail("branch class fractions exceed 1");
        }
        if !(0.01..1.0).contains(&self.dep_decay) {
            return fail("dep_decay outside [0.01, 1)");
        }
        if self.data_kb == 0 {
            return fail("data_kb must be positive");
        }
        if self.hot_frac <= 0.0 {
            return fail("hot_frac must be positive");
        }
        if !(0.0..=4.0).contains(&self.zipf_s) {
            return fail("zipf_s outside [0, 4]");
        }
        if self.w_hot < 0.0 || self.w_stream < 0.0 || self.w_rand < 0.0 {
            return fail("memory region weight negative");
        }
        if self.w_hot + self.w_stream + self.w_rand <= 0.0 {
            return fail("memory region weights sum to zero");
        }
        if self.loop_mean < 1.0 {
            return fail("loop_mean must be >= 1");
        }
        Ok(())
    }

    /// Fraction of dynamic instructions that are branches (≈ 1/block_size).
    pub fn branch_fraction(&self) -> f64 {
        1.0 / self.block_size
    }

    /// Fraction of non-branch instructions that are memory operations.
    pub fn memory_fraction(&self) -> f64 {
        let total: f64 = self.w_int_alu
            + self.w_int_mul
            + self.w_int_div
            + self.w_fp_alu
            + self.w_fp_mul
            + self.w_fp_div
            + self.w_load
            + self.w_store;
        (self.w_load + self.w_store) / total
    }

    /// A neutral mid-range profile, useful as a starting point for tests
    /// and hand-built variants.
    pub fn template(name: &'static str, suite: Suite, seed: u64) -> Self {
        Self {
            name,
            suite,
            seed,
            w_int_alu: 45.0,
            w_int_mul: 1.5,
            w_int_div: 0.3,
            w_fp_alu: 4.0,
            w_fp_mul: 2.0,
            w_fp_div: 0.4,
            w_load: 24.0,
            w_store: 10.0,
            block_size: 6.0,
            code_kb: 48,
            br_biased: 0.6,
            br_loop: 0.25,
            br_pattern: 0.1,
            br_random: 0.05,
            bias_p: 0.97,
            loop_mean: 12.0,
            dep_p: 0.65,
            dep_decay: 0.22,
            data_kb: 256,
            hot_frac: 0.25,
            zipf_s: 1.5,
            w_hot: 0.88,
            w_stream: 0.08,
            w_rand: 0.04,
            chase_frac: 0.02,
        }
    }
}

impl ToJson for Profile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("suite", self.suite.to_json()),
            ("seed", self.seed.to_json()),
            ("w_int_alu", self.w_int_alu.to_json()),
            ("w_int_mul", self.w_int_mul.to_json()),
            ("w_int_div", self.w_int_div.to_json()),
            ("w_fp_alu", self.w_fp_alu.to_json()),
            ("w_fp_mul", self.w_fp_mul.to_json()),
            ("w_fp_div", self.w_fp_div.to_json()),
            ("w_load", self.w_load.to_json()),
            ("w_store", self.w_store.to_json()),
            ("block_size", self.block_size.to_json()),
            ("code_kb", self.code_kb.to_json()),
            ("br_biased", self.br_biased.to_json()),
            ("br_loop", self.br_loop.to_json()),
            ("br_pattern", self.br_pattern.to_json()),
            ("br_random", self.br_random.to_json()),
            ("bias_p", self.bias_p.to_json()),
            ("loop_mean", self.loop_mean.to_json()),
            ("dep_p", self.dep_p.to_json()),
            ("dep_decay", self.dep_decay.to_json()),
            ("data_kb", self.data_kb.to_json()),
            ("hot_frac", self.hot_frac.to_json()),
            ("zipf_s", self.zipf_s.to_json()),
            ("w_hot", self.w_hot.to_json()),
            ("w_stream", self.w_stream.to_json()),
            ("w_rand", self.w_rand.to_json()),
            ("chase_frac", self.chase_frac.to_json()),
        ])
    }
}

impl FromJson for Profile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.field("name")?.as_str()?;
        // Canonical profiles carry `&'static str` names; a parsed name is
        // interned by leaking. Profiles are few (45 canonical + test
        // variants), so the leak is bounded and deliberate.
        let name: &'static str = match crate::suites::all_benchmarks()
            .iter()
            .find(|p| p.name == name)
        {
            Some(known) => known.name,
            None => Box::leak(name.to_string().into_boxed_str()),
        };
        let p = Self {
            name,
            suite: Suite::from_json(v.field("suite")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            w_int_alu: f64::from_json(v.field("w_int_alu")?)?,
            w_int_mul: f64::from_json(v.field("w_int_mul")?)?,
            w_int_div: f64::from_json(v.field("w_int_div")?)?,
            w_fp_alu: f64::from_json(v.field("w_fp_alu")?)?,
            w_fp_mul: f64::from_json(v.field("w_fp_mul")?)?,
            w_fp_div: f64::from_json(v.field("w_fp_div")?)?,
            w_load: f64::from_json(v.field("w_load")?)?,
            w_store: f64::from_json(v.field("w_store")?)?,
            block_size: f64::from_json(v.field("block_size")?)?,
            code_kb: u32::from_json(v.field("code_kb")?)?,
            br_biased: f64::from_json(v.field("br_biased")?)?,
            br_loop: f64::from_json(v.field("br_loop")?)?,
            br_pattern: f64::from_json(v.field("br_pattern")?)?,
            br_random: f64::from_json(v.field("br_random")?)?,
            bias_p: f64::from_json(v.field("bias_p")?)?,
            loop_mean: f64::from_json(v.field("loop_mean")?)?,
            dep_p: f64::from_json(v.field("dep_p")?)?,
            dep_decay: f64::from_json(v.field("dep_decay")?)?,
            data_kb: u32::from_json(v.field("data_kb")?)?,
            hot_frac: f64::from_json(v.field("hot_frac")?)?,
            zipf_s: f64::from_json(v.field("zipf_s")?)?,
            w_hot: f64::from_json(v.field("w_hot")?)?,
            w_stream: f64::from_json(v.field("w_stream")?)?,
            w_rand: f64::from_json(v.field("w_rand")?)?,
            chase_frac: f64::from_json(v.field("chase_frac")?)?,
        };
        p.validate()
            .map_err(|e| JsonError::msg(format!("profile fails validation: {e}")))?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_is_valid() {
        Profile::template("t", Suite::SpecCpu2000, 1)
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_catches_bad_block_size() {
        let mut p = Profile::template("t", Suite::SpecCpu2000, 1);
        p.block_size = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_negative_weight() {
        let mut p = Profile::template("t", Suite::SpecCpu2000, 1);
        p.w_load = -1.0;
        let err = p.validate().unwrap_err();
        assert!(err.reason.contains("instruction-mix"));
    }

    #[test]
    fn validate_catches_branch_fraction_overflow() {
        let mut p = Profile::template("t", Suite::SpecCpu2000, 1);
        p.br_biased = 0.9;
        p.br_loop = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_data() {
        let mut p = Profile::template("t", Suite::SpecCpu2000, 1);
        p.data_kb = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn derived_fractions_are_consistent() {
        let p = Profile::template("t", Suite::MiBench, 1);
        assert!((p.branch_fraction() - 1.0 / 6.0).abs() < 1e-12);
        let mem = p.memory_fraction();
        assert!((0.0..1.0).contains(&mem));
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::SpecCpu2000.to_string(), "SPEC CPU 2000");
        assert_eq!(Suite::MiBench.to_string(), "MiBench");
    }
}
