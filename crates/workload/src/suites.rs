//! The two benchmark suites used in the paper, as synthetic stand-ins.
//!
//! Each profile is tuned so the program behaves like its namesake *relative
//! to the rest of the suite*: integer vs floating-point mix, code footprint
//! (I-cache pressure), data footprint and locality (D-cache/L2/memory
//! pressure), dependency structure (extractable ILP) and branch behaviour
//! (predictor pressure). The absolute magnitudes are synthetic; the
//! *relations* — which programs are outliers, which cluster together, which
//! structures each program stresses — follow the published
//! characterisations of SPEC CPU 2000 and MiBench.
//!
//! Notable deliberate choices, keyed to the paper's observations:
//!
//! * `art` — floating-point, working set far beyond the largest L2, low
//!   locality: the strongest outlier in every metric (Fig 5).
//! * `mcf` — pointer-chasing integer code with a huge sparse footprint:
//!   the second outlier, especially for energy.
//! * `parser` — small working set, predictable branches: the narrowest
//!   dynamic range in the suite (Fig 4a).
//! * `gcc`/`crafty` — large code footprints: I-cache sensitive.
//! * `swim`/`mgrid`/`applu` — streaming FP loops with long dependency-free
//!   runs: width/ROB/RF sensitive, bandwidth-bound at the memory side.
//! * `tiff2rgba`, `patricia` (MiBench) — atypical profiles (streaming
//!   store-heavy conversion; pointer-trie with erratic branches) so that,
//!   as in Fig 12, they sit outside the SPEC behaviour hull and show the
//!   highest training error.

use crate::profile::{Profile, Suite};

fn tuned(name: &'static str, suite: Suite, seed: u64, tweak: impl FnOnce(&mut Profile)) -> Profile {
    let mut p = Profile::template(name, suite, seed);
    tweak(&mut p);
    p.validate()
        .unwrap_or_else(|e| panic!("suite profile must validate: {e}"));
    p
}

/// Marks a profile as floating-point dominated (SPEC CFP2000-style mix).
fn fp_mix(p: &mut Profile) {
    p.w_int_alu = 20.0;
    p.w_fp_alu = 22.0;
    p.w_fp_mul = 12.0;
    p.w_fp_div = 1.0;
    p.w_load = 28.0;
    p.w_store = 10.0;
    p.block_size = 12.0; // FP codes have long basic blocks
    p.br_biased = 0.35;
    p.br_loop = 0.55;
    p.br_pattern = 0.05;
    p.br_random = 0.05;
    p.loop_mean = 32.0;
}

/// Sets the three memory-region weights in one call.
fn mem_mix(p: &mut Profile, hot: f64, stream: f64, rand: f64) {
    p.w_hot = hot;
    p.w_stream = stream;
    p.w_rand = rand;
}

/// The 26 SPEC CPU 2000 stand-in profiles.
///
/// # Examples
///
/// ```
/// let suite = dse_workload::suites::spec2000();
/// assert_eq!(suite.len(), 26);
/// assert!(suite.iter().any(|p| p.name == "art"));
/// ```
pub fn spec2000() -> Vec<Profile> {
    let s = Suite::SpecCpu2000;
    vec![
        // ---------------- CINT2000 ----------------
        tuned("gzip", s, 0x1001, |p| {
            p.data_kb = 512;
            p.hot_frac = 0.25; // 128 KB hot: straddles the L1 range
            p.zipf_s = 1.4;
            mem_mix(p, 0.75, 0.2, 0.05);
            p.dep_decay = 0.28;
            p.block_size = 7.0;
        }),
        tuned("vpr", s, 0x1002, |p| {
            p.data_kb = 2_048;
            p.hot_frac = 0.05;
            p.zipf_s = 1.3;
            mem_mix(p, 0.86, 0.07, 0.07);
            p.chase_frac = 0.1;
            p.br_random = 0.1;
            p.br_biased = 0.55;
        }),
        tuned("gcc", s, 0x1003, |p| {
            p.code_kb = 320; // far beyond the largest I-cache
            p.block_size = 4.5;
            p.data_kb = 1_024;
            p.hot_frac = 0.1;
            p.zipf_s = 1.45;
            mem_mix(p, 0.88, 0.07, 0.05);
            p.br_biased = 0.55;
            p.br_random = 0.1;
            p.br_pattern = 0.1;
            p.br_loop = 0.25;
            p.dep_decay = 0.32;
        }),
        tuned("mcf", s, 0x1004, |p| {
            // Pointer-chasing over a sparse multi-MB graph: memory-latency
            // bound; the paper's second-strongest outlier.
            p.data_kb = 24_576;
            p.hot_frac = 0.02;
            p.zipf_s = 0.4;
            mem_mix(p, 0.20, 0.05, 0.75);
            p.chase_frac = 0.45;
            p.w_load = 32.0;
            p.w_store = 8.0;
            p.dep_decay = 0.4;
            p.block_size = 5.0;
            p.br_random = 0.15;
            p.br_biased = 0.55;
            p.br_loop = 0.25;
            p.br_pattern = 0.05;
        }),
        tuned("crafty", s, 0x1005, |p| {
            p.code_kb = 224;
            p.data_kb = 256;
            p.hot_frac = 0.25;
            p.zipf_s = 1.55;
            mem_mix(p, 0.93, 0.04, 0.03);
            p.block_size = 4.0;
            p.br_random = 0.12;
            p.br_biased = 0.55;
            p.br_pattern = 0.18;
            p.br_loop = 0.15;
            p.dep_decay = 0.24;
        }),
        tuned("parser", s, 0x1006, |p| {
            // Small hot dictionary, predictable branches: the narrowest
            // dynamic range in the suite (Fig 4a).
            p.data_kb = 96;
            p.hot_frac = 0.5;
            p.zipf_s = 1.8;
            mem_mix(p, 0.93, 0.05, 0.02);
            p.code_kb = 40;
            p.block_size = 5.0;
            p.bias_p = 0.985;
            p.br_biased = 0.7;
            p.br_loop = 0.2;
            p.br_pattern = 0.05;
            p.br_random = 0.05;
            p.dep_decay = 0.35;
        }),
        tuned("eon", s, 0x1007, |p| {
            p.code_kb = 160;
            p.w_fp_alu = 10.0;
            p.w_fp_mul = 5.0;
            p.data_kb = 192;
            p.hot_frac = 0.33;
            p.zipf_s = 1.5;
            mem_mix(p, 0.9, 0.07, 0.03);
            p.block_size = 6.0;
            p.dep_decay = 0.2;
        }),
        tuned("perlbmk", s, 0x1008, |p| {
            p.code_kb = 256;
            p.block_size = 4.5;
            p.data_kb = 512;
            p.hot_frac = 0.12;
            p.zipf_s = 1.5;
            mem_mix(p, 0.9, 0.05, 0.05);
            p.br_random = 0.1;
            p.br_pattern = 0.15;
            p.br_biased = 0.55;
            p.br_loop = 0.2;
            p.chase_frac = 0.06;
        }),
        tuned("gap", s, 0x1009, |p| {
            p.data_kb = 1_536;
            p.hot_frac = 0.08;
            p.zipf_s = 1.45;
            mem_mix(p, 0.82, 0.14, 0.04);
            p.block_size = 6.5;
            p.dep_decay = 0.24;
        }),
        tuned("vortex", s, 0x100A, |p| {
            p.code_kb = 288;
            p.data_kb = 2_048;
            p.hot_frac = 0.05;
            p.zipf_s = 1.4;
            mem_mix(p, 0.87, 0.08, 0.05);
            p.chase_frac = 0.08;
            p.block_size = 5.5;
            p.w_store = 14.0;
        }),
        tuned("bzip2", s, 0x100B, |p| {
            p.data_kb = 3_072;
            p.hot_frac = 0.08;
            p.zipf_s = 1.35;
            mem_mix(p, 0.75, 0.21, 0.04);
            p.block_size = 7.5;
            p.dep_decay = 0.26;
        }),
        tuned("twolf", s, 0x100C, |p| {
            p.data_kb = 512;
            p.hot_frac = 0.15;
            p.zipf_s = 1.35;
            mem_mix(p, 0.87, 0.05, 0.08);
            p.chase_frac = 0.12;
            p.block_size = 5.0;
            p.br_random = 0.12;
            p.br_biased = 0.53;
        }),
        // ---------------- CFP2000 ----------------
        tuned("wupwise", s, 0x2001, |p| {
            fp_mix(p);
            p.data_kb = 2_048;
            p.hot_frac = 0.1;
            p.zipf_s = 1.4;
            mem_mix(p, 0.75, 0.23, 0.02);
            p.dep_decay = 0.1;
        }),
        tuned("swim", s, 0x2002, |p| {
            // Streaming stencil over arrays far beyond the L2: memory
            // bandwidth bound.
            fp_mix(p);
            p.data_kb = 16_384;
            p.hot_frac = 0.02;
            mem_mix(p, 0.45, 0.5, 0.05);
            p.dep_decay = 0.07;
            p.block_size = 16.0;
            p.loop_mean = 64.0;
        }),
        tuned("mgrid", s, 0x2003, |p| {
            fp_mix(p);
            p.data_kb = 8_192;
            p.hot_frac = 0.04;
            mem_mix(p, 0.55, 0.42, 0.03);
            p.dep_decay = 0.09;
            p.block_size = 14.0;
            p.loop_mean = 48.0;
        }),
        tuned("applu", s, 0x2004, |p| {
            fp_mix(p);
            p.data_kb = 6_144;
            p.hot_frac = 0.05;
            mem_mix(p, 0.6, 0.35, 0.05);
            p.dep_decay = 0.1;
            p.block_size = 13.0;
            p.loop_mean = 40.0;
        }),
        tuned("mesa", s, 0x2005, |p| {
            fp_mix(p);
            p.code_kb = 128;
            p.data_kb = 768;
            p.hot_frac = 0.2;
            p.zipf_s = 1.5;
            mem_mix(p, 0.87, 0.11, 0.02);
            p.block_size = 8.0;
            p.dep_decay = 0.16;
        }),
        tuned("galgel", s, 0x2006, |p| {
            // Clusters near art for cycles (Fig 5a): large FP working set,
            // moderate locality.
            fp_mix(p);
            p.data_kb = 10_240;
            p.hot_frac = 0.04;
            p.zipf_s = 1.05;
            mem_mix(p, 0.68, 0.19, 0.13);
            p.dep_decay = 0.12;
        }),
        tuned("art", s, 0x2007, |p| {
            // Neural-net simulation scanning ~dozens of MB with almost no
            // reuse: every cache level misses, the strongest outlier of the
            // whole suite in every metric.
            fp_mix(p);
            p.data_kb = 32_768;
            p.hot_frac = 0.01;
            p.zipf_s = 0.2;
            mem_mix(p, 0.15, 0.35, 0.5);
            p.w_load = 34.0;
            p.dep_decay = 0.2;
            p.block_size = 10.0;
        }),
        tuned("equake", s, 0x2008, |p| {
            fp_mix(p);
            p.data_kb = 4_096;
            p.hot_frac = 0.08;
            p.zipf_s = 1.25;
            mem_mix(p, 0.74, 0.16, 0.10);
            p.chase_frac = 0.12;
            p.dep_decay = 0.16;
        }),
        tuned("facerec", s, 0x2009, |p| {
            fp_mix(p);
            p.data_kb = 3_072;
            p.hot_frac = 0.1;
            p.zipf_s = 1.45;
            mem_mix(p, 0.78, 0.18, 0.04);
            p.dep_decay = 0.12;
        }),
        tuned("ammp", s, 0x200A, |p| {
            fp_mix(p);
            p.data_kb = 12_288;
            p.hot_frac = 0.03;
            p.zipf_s = 0.85;
            mem_mix(p, 0.63, 0.2, 0.17);
            p.chase_frac = 0.15;
            p.dep_decay = 0.18;
        }),
        tuned("lucas", s, 0x200B, |p| {
            fp_mix(p);
            p.data_kb = 8_192;
            p.hot_frac = 0.05;
            mem_mix(p, 0.6, 0.36, 0.04);
            p.dep_decay = 0.09;
            p.block_size = 15.0;
        }),
        tuned("fma3d", s, 0x200C, |p| {
            fp_mix(p);
            p.code_kb = 192;
            p.data_kb = 4_096;
            p.hot_frac = 0.07;
            p.zipf_s = 1.35;
            mem_mix(p, 0.78, 0.17, 0.05);
            p.dep_decay = 0.15;
        }),
        tuned("sixtrack", s, 0x200D, |p| {
            // Compute-bound particle tracking: tiny working set, huge ILP.
            fp_mix(p);
            p.data_kb = 128;
            p.hot_frac = 0.25;
            p.zipf_s = 1.7;
            mem_mix(p, 0.95, 0.04, 0.01);
            p.dep_decay = 0.07;
            p.w_fp_mul = 16.0;
            p.w_fp_div = 2.0;
            p.block_size = 18.0;
        }),
        tuned("apsi", s, 0x200E, |p| {
            fp_mix(p);
            p.data_kb = 2_048;
            p.hot_frac = 0.12;
            p.zipf_s = 1.45;
            mem_mix(p, 0.8, 0.17, 0.03);
            p.dep_decay = 0.12;
        }),
    ]
}

/// The 19 MiBench stand-in profiles (ghostscript omitted, as in the paper).
///
/// # Examples
///
/// ```
/// let suite = dse_workload::suites::mibench();
/// assert_eq!(suite.len(), 19);
/// assert!(!suite.iter().any(|p| p.name == "ghostscript"));
/// ```
pub fn mibench() -> Vec<Profile> {
    let s = Suite::MiBench;
    // Embedded defaults: small code and data, strongly biased branches.
    let emb = |p: &mut Profile| {
        p.code_kb = 16;
        p.data_kb = 64;
        p.hot_frac = 0.4;
        p.zipf_s = 1.5;
        mem_mix(p, 0.9, 0.07, 0.03);
        p.bias_p = 0.975;
        p.br_biased = 0.6;
        p.br_loop = 0.3;
        p.br_pattern = 0.05;
        p.br_random = 0.05;
    };
    vec![
        tuned("basicmath", s, 0x3001, |p| {
            emb(p);
            p.w_fp_alu = 14.0;
            p.w_fp_mul = 7.0;
            p.w_fp_div = 2.0;
            p.block_size = 8.0;
            p.dep_decay = 0.2;
        }),
        tuned("bitcount", s, 0x3002, |p| {
            emb(p);
            p.data_kb = 8;
            p.w_load = 10.0;
            p.w_store = 4.0;
            p.w_int_alu = 70.0;
            p.block_size = 5.0;
            p.dep_decay = 0.4; // tight serial bit loops
        }),
        tuned("qsort", s, 0x3003, |p| {
            emb(p);
            p.data_kb = 512;
            p.hot_frac = 0.15;
            p.zipf_s = 1.3;
            mem_mix(p, 0.82, 0.1, 0.08);
            p.br_random = 0.25;
            p.br_biased = 0.45;
            p.br_loop = 0.25;
            p.block_size = 5.0;
        }),
        tuned("susan", s, 0x3004, |p| {
            emb(p);
            p.data_kb = 384;
            p.hot_frac = 0.2;
            mem_mix(p, 0.62, 0.35, 0.03);
            p.block_size = 9.0;
            p.dep_decay = 0.12;
        }),
        tuned("jpeg", s, 0x3005, |p| {
            emb(p);
            p.code_kb = 48;
            p.data_kb = 512;
            p.hot_frac = 0.15;
            mem_mix(p, 0.68, 0.3, 0.02);
            p.w_int_mul = 6.0;
            p.block_size = 8.0;
            p.dep_decay = 0.16;
        }),
        tuned("lame", s, 0x3006, |p| {
            emb(p);
            p.code_kb = 96;
            p.data_kb = 1_024;
            p.hot_frac = 0.12;
            mem_mix(p, 0.7, 0.27, 0.03);
            p.w_fp_alu = 16.0;
            p.w_fp_mul = 10.0;
            p.block_size = 10.0;
            p.dep_decay = 0.12;
        }),
        tuned("dijkstra", s, 0x3007, |p| {
            emb(p);
            p.data_kb = 256;
            p.hot_frac = 0.25;
            p.zipf_s = 1.4;
            mem_mix(p, 0.87, 0.05, 0.08);
            p.chase_frac = 0.12;
            p.block_size = 5.5;
        }),
        tuned("patricia", s, 0x3008, |p| {
            // Trie traversal: pointer-chasing with erratic branches —
            // deliberately outside the SPEC hull (high training error in
            // Fig 12).
            emb(p);
            p.data_kb = 2_048;
            p.hot_frac = 0.03;
            p.zipf_s = 0.5;
            p.chase_frac = 0.4;
            mem_mix(p, 0.35, 0.05, 0.6);
            p.br_random = 0.3;
            p.br_biased = 0.4;
            p.br_loop = 0.2;
            p.br_pattern = 0.1;
            p.block_size = 4.0;
        }),
        tuned("stringsearch", s, 0x3009, |p| {
            emb(p);
            p.data_kb = 128;
            p.hot_frac = 0.3;
            mem_mix(p, 0.75, 0.22, 0.03);
            p.block_size = 4.5;
            p.br_pattern = 0.2;
            p.br_biased = 0.5;
            p.br_loop = 0.2;
            p.br_random = 0.1;
        }),
        tuned("blowfish", s, 0x300A, |p| {
            emb(p);
            p.data_kb = 16;
            p.hot_frac = 0.6;
            p.zipf_s = 0.8; // S-box lookups spread over the table
            mem_mix(p, 0.85, 0.1, 0.05);
            p.w_int_alu = 60.0;
            p.block_size = 12.0;
            p.dep_decay = 0.28;
        }),
        tuned("rijndael", s, 0x300B, |p| {
            emb(p);
            p.data_kb = 24;
            p.hot_frac = 0.5;
            p.zipf_s = 0.7;
            mem_mix(p, 0.8, 0.15, 0.05);
            p.w_int_alu = 55.0;
            p.block_size = 14.0;
            p.dep_decay = 0.24;
        }),
        tuned("sha", s, 0x300C, |p| {
            emb(p);
            p.data_kb = 16;
            p.w_int_alu = 65.0;
            p.w_load = 14.0;
            p.w_store = 6.0;
            p.block_size = 16.0;
            p.dep_decay = 0.35; // long dependent rotate chains
        }),
        tuned("crc32", s, 0x300D, |p| {
            emb(p);
            p.data_kb = 32;
            mem_mix(p, 0.35, 0.6, 0.05);
            p.block_size = 4.0;
            p.dep_decay = 0.4;
            p.loop_mean = 200.0;
        }),
        tuned("adpcm", s, 0x300E, |p| {
            emb(p);
            p.data_kb = 32;
            mem_mix(p, 0.3, 0.65, 0.05);
            p.block_size = 6.0;
            p.dep_decay = 0.4;
            p.br_pattern = 0.15;
            p.br_biased = 0.5;
            p.br_loop = 0.25;
            p.br_random = 0.1;
        }),
        tuned("fft", s, 0x300F, |p| {
            emb(p);
            p.data_kb = 256;
            p.hot_frac = 0.3;
            mem_mix(p, 0.72, 0.25, 0.03);
            p.w_fp_alu = 18.0;
            p.w_fp_mul = 12.0;
            p.block_size = 11.0;
            p.dep_decay = 0.1;
        }),
        tuned("gsm", s, 0x3010, |p| {
            emb(p);
            p.data_kb = 48;
            p.w_int_mul = 8.0;
            mem_mix(p, 0.5, 0.45, 0.05);
            p.block_size = 9.0;
            p.dep_decay = 0.2;
        }),
        tuned("ispell", s, 0x3011, |p| {
            emb(p);
            p.code_kb = 64;
            p.data_kb = 512;
            p.hot_frac = 0.2;
            mem_mix(p, 0.85, 0.07, 0.08);
            p.chase_frac = 0.08;
            p.block_size = 5.0;
            p.br_random = 0.1;
            p.br_biased = 0.55;
            p.br_loop = 0.25;
            p.br_pattern = 0.1;
        }),
        tuned("tiff2rgba", s, 0x3012, |p| {
            // Pure streaming format conversion with a store-heavy mix —
            // the other deliberate outlier (Fig 12).
            emb(p);
            p.data_kb = 8_192;
            p.hot_frac = 0.01;
            mem_mix(p, 0.06, 0.88, 0.06);
            p.w_load = 22.0;
            p.w_store = 20.0;
            p.block_size = 12.0;
            p.dep_decay = 0.1;
            p.loop_mean = 500.0;
        }),
        tuned("typeset", s, 0x3013, |p| {
            emb(p);
            p.code_kb = 128;
            p.data_kb = 1_024;
            p.hot_frac = 0.12;
            mem_mix(p, 0.82, 0.08, 0.1);
            p.chase_frac = 0.08;
            p.block_size = 5.0;
            p.br_random = 0.1;
            p.br_biased = 0.55;
        }),
    ]
}

/// Both suites concatenated (SPEC first), convenient for dataset generation.
pub fn all_benchmarks() -> Vec<Profile> {
    let mut v = spec2000();
    v.extend(mibench());
    v
}

/// One row of the canonical program enumeration shared by the CLI's
/// `workload list` and the server's `GET /v1/workloads`.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Owning suite.
    pub suite: Suite,
    /// Program name.
    pub name: String,
    /// Base trace seed.
    pub seed: u64,
    /// Data footprint in KB — the most useful at-a-glance signal.
    pub data_kb: u32,
}

impl CatalogEntry {
    fn of(p: &Profile) -> Self {
        Self {
            suite: p.suite,
            name: p.name.to_string(),
            seed: p.seed,
            data_kb: p.data_kb,
        }
    }
}

impl dse_util::json::ToJson for CatalogEntry {
    fn to_json(&self) -> dse_util::json::Json {
        use dse_util::json::Json;
        Json::obj([
            ("suite", self.suite.to_json()),
            ("name", self.name.to_json()),
            ("seed", self.seed.to_json()),
            ("data_kb", self.data_kb.to_json()),
        ])
    }
}

/// Canonical enumeration of all known programs: the 45 built-ins in
/// suite order, followed by `extra` (imported or synthesised profiles)
/// in the order given. Every listing surface renders exactly this, so
/// the CLI and server can never drift apart.
pub fn catalog(extra: &[Profile]) -> Vec<CatalogEntry> {
    all_benchmarks()
        .iter()
        .chain(extra)
        .map(CatalogEntry::of)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn spec_has_26_unique_valid_profiles() {
        let suite = spec2000();
        assert_eq!(suite.len(), 26);
        let names: HashSet<_> = suite.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 26);
        for p in &suite {
            p.validate().unwrap();
            assert_eq!(p.suite, Suite::SpecCpu2000);
        }
    }

    #[test]
    fn mibench_has_19_unique_valid_profiles() {
        let suite = mibench();
        assert_eq!(suite.len(), 19);
        let names: HashSet<_> = suite.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 19);
        for p in &suite {
            p.validate().unwrap();
            assert_eq!(p.suite, Suite::MiBench);
        }
    }

    #[test]
    fn seeds_are_unique_across_suites() {
        let seeds: Vec<u64> = all_benchmarks().iter().map(|p| p.seed).collect();
        let set: HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), seeds.len());
    }

    #[test]
    fn art_is_the_biggest_footprint() {
        let suite = spec2000();
        let art = suite.iter().find(|p| p.name == "art").unwrap();
        for p in &suite {
            if p.name != "art" {
                assert!(art.data_kb >= p.data_kb, "{} out-foots art", p.name);
            }
        }
    }

    #[test]
    fn mcf_chases_pointers_hardest_in_spec() {
        let suite = spec2000();
        let mcf = suite.iter().find(|p| p.name == "mcf").unwrap();
        for p in &suite {
            if p.name != "mcf" {
                assert!(mcf.chase_frac >= p.chase_frac);
            }
        }
    }

    #[test]
    fn mibench_footprints_are_mostly_small() {
        let small = mibench().iter().filter(|p| p.data_kb <= 1_024).count();
        assert!(small >= 15, "only {small} small-footprint MiBench programs");
    }

    #[test]
    fn all_benchmarks_concatenates() {
        assert_eq!(all_benchmarks().len(), 45);
    }

    #[test]
    fn catalog_lists_builtins_then_extras() {
        let base = catalog(&[]);
        assert_eq!(base.len(), 45);
        assert_eq!(base[0].name, "gzip");
        assert_eq!(base[0].suite, Suite::SpecCpu2000);
        let extra = [Profile::template("wild-prog", Suite::External, 99)];
        let full = catalog(&extra);
        assert_eq!(full.len(), 46);
        assert_eq!(full[45].name, "wild-prog");
        assert_eq!(full[45].suite, Suite::External);
        assert_eq!(full[45].seed, 99);
        assert_eq!(&full[..45], &base[..]);
    }

    #[test]
    fn every_profile_generates_a_trace() {
        for p in all_benchmarks() {
            let t = crate::TraceGenerator::new(&p).generate(200);
            assert_eq!(t.len(), 200, "{}", p.name);
        }
    }
}
