//! Ordinary least-squares linear regression (§5.3.1).
//!
//! The architecture-centric model combines the training programs' design
//! spaces with the weights that minimise the squared error over the
//! responses — equation (5) of the paper, `β = (XᵀX)⁻¹ Xᵀ y`. The normal
//! equations are solved by Cholesky decomposition with a small always-on
//! ridge (relative λ = 1e-4): the design-matrix columns are different
//! programs' values of the same metric and are strongly correlated, so
//! plain OLS suffers a variance spike at the interpolation threshold
//! R ≈ N. The ridge is the standard regularised reading of (5) and is
//! grown automatically if the system is still singular (R < N).

use crate::linalg::Matrix;
use dse_util::json::{FromJson, Json, JsonError, ToJson};

/// A fitted linear model `ŷ = β₀·x₀ + … + β_{m−1}·x_{m−1} (+ intercept)`.
///
/// # Examples
///
/// ```
/// use dse_ml::LinearRegression;
/// let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
/// let ys = vec![2.0, 3.0, 5.0];
/// let model = LinearRegression::fit(&xs, &ys, false);
/// assert!((model.predict(&[2.0, 1.0]) - 7.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
    has_intercept: bool,
}

impl LinearRegression {
    /// Fits by least squares. When `intercept` is true an additional bias
    /// term is estimated (the paper's β₀).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length, are empty, or rows have
    /// unequal width.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], intercept: bool) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit on no data");
        let dim = xs[0].len();
        assert!(dim > 0, "need at least one feature");

        let rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                assert_eq!(x.len(), dim, "rows must have equal width");
                let mut r = x.clone();
                if intercept {
                    r.push(1.0);
                }
                r
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let xt = x.transpose();
        let xty = xt.matvec(ys);
        let gram = x.gram();
        let n = gram.rows();

        // Solve (XᵀX + λI) β = Xᵀy. A small always-on ridge keeps the
        // fit stable when the number of samples is close to the number of
        // features — for the architecture-centric model the design-matrix
        // columns are different programs' values of the same metric and
        // are strongly correlated, so plain OLS has a severe variance
        // spike at R ≈ N (the interpolation threshold). λ grows from this
        // floor until Cholesky succeeds; steps are relative to the mean
        // diagonal so the behaviour is scale-free.
        let diag_mean: f64 = (0..n).map(|i| gram.get(i, i)).sum::<f64>() / n as f64;
        let base = if diag_mean > 0.0 { diag_mean } else { 1.0 };
        let mut lambda = base * 1e-4;
        // The intercept column (last, when present) is conventionally
        // left unpenalised.
        let penalised = if intercept { n - 1 } else { n };
        let beta = loop {
            let mut g = gram.clone();
            if lambda > 0.0 {
                for i in 0..penalised {
                    g.set(i, i, g.get(i, i) + lambda);
                }
            }
            if let Some(b) = g.solve_spd(&xty) {
                break b;
            }
            lambda *= 10.0;
            assert!(
                lambda <= base * 10.0,
                "normal equations remained singular at extreme ridge"
            );
        };

        let (weights, b0) = if intercept {
            let mut w = beta;
            let b0 = w.pop().expect("intercept column exists");
            (w, b0)
        } else {
            (beta, 0.0)
        };
        Self {
            weights,
            intercept: b0,
            has_intercept: intercept,
        }
    }

    /// The fitted coefficients (excluding the intercept).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept (0 when fitted without one).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Whether the model includes an intercept.
    pub fn has_intercept(&self) -> bool {
        self.has_intercept
    }

    /// Predicts the target for one row.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature width mismatch");
        self.intercept + x.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>()
    }

    /// Predicts a batch of rows.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

impl ToJson for LinearRegression {
    fn to_json(&self) -> Json {
        Json::obj([
            ("weights", self.weights.to_json()),
            ("intercept", self.intercept.to_json()),
            ("has_intercept", self.has_intercept.to_json()),
        ])
    }
}

impl FromJson for LinearRegression {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let m = Self {
            weights: Vec::from_json(v.field("weights")?)?,
            intercept: f64::from_json(v.field("intercept")?)?,
            has_intercept: bool::from_json(v.field("has_intercept")?)?,
        };
        if m.weights.is_empty() {
            return Err(JsonError::msg("linear model has no weights"));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::correlation;
    use dse_rng::Xoshiro256;

    #[test]
    fn recovers_exact_linear_weights() {
        let mut rng = Xoshiro256::seed_from(11);
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..3).map(|_| rng.next_f64() * 10.0).collect())
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1] + 0.5 * x[2]).collect();
        let m = LinearRegression::fit(&xs, &ys, false);
        // The always-on ridge biases weights by O(1e-4) relative.
        assert!((m.weights()[0] - 2.0).abs() < 1e-2);
        assert!((m.weights()[1] + 1.0).abs() < 1e-2);
        assert!((m.weights()[2] - 0.5).abs() < 1e-2);
    }

    #[test]
    fn recovers_intercept() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.21 * x[0] + 0.59).collect();
        let m = LinearRegression::fit(&xs, &ys, true);
        // The paper's Fig 8 example: y = β₀ + β₁x with β₀ = 0.59, β₁ = 0.21.
        assert!((m.intercept() - 0.59).abs() < 1e-2);
        assert!((m.weights()[0] - 0.21).abs() < 1e-3);
    }

    #[test]
    fn underdetermined_system_is_regularised_not_fatal() {
        // 2 samples, 5 features: XᵀX is singular; ridge must kick in.
        let xs = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0], vec![5.0, 4.0, 3.0, 2.0, 1.0]];
        let ys = vec![1.0, 2.0];
        let m = LinearRegression::fit(&xs, &ys, false);
        // Must reproduce the training points closely.
        assert!((m.predict(&xs[0]) - 1.0).abs() < 1e-3);
        assert!((m.predict(&xs[1]) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn noisy_fit_still_correlates() {
        let mut rng = Xoshiro256::seed_from(12);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.next_f64() * 4.0, rng.next_f64() * 4.0])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 3.0 * x[0] + x[1] + (rng.next_f64() - 0.5))
            .collect();
        let m = LinearRegression::fit(&xs, &ys, true);
        let preds = m.predict_batch(&xs);
        assert!(correlation(&preds, &ys) > 0.98);
    }

    #[test]
    fn duplicate_feature_columns_are_handled() {
        // Perfectly collinear features: singular Gram, ridge resolves it.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let m = LinearRegression::fit(&xs, &ys, false);
        assert!((m.predict(&[5.0, 5.0]) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn noise_free_data_is_recovered_to_ridge_precision() {
        // Noise-free targets from known coefficients: the only error left
        // is the always-on relative ridge (λ = 1e-4), so both the
        // coefficients and the training predictions must be recovered to
        // well within that bias.
        let mut rng = Xoshiro256::seed_from(42);
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|_| (0..4).map(|_| rng.next_f64() * 6.0 - 3.0).collect())
            .collect();
        let truth = [1.5, -2.25, 0.0, 4.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x.iter().zip(&truth).map(|(a, b)| a * b).sum::<f64>() + 7.5)
            .collect();
        let m = LinearRegression::fit(&xs, &ys, true);
        for (got, want) in m.weights().iter().zip(&truth) {
            assert!((got - want).abs() < 5e-3, "weight {got} vs {want}");
        }
        assert!((m.intercept() - 7.5).abs() < 5e-3);
        for (pred, y) in m.predict_batch(&xs).iter().zip(&ys) {
            assert!((pred - y).abs() < 1e-2, "prediction {pred} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0], false);
    }

    #[test]
    fn json_round_trip_predicts_bit_identically() {
        let mut rng = Xoshiro256::seed_from(9);
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..5).map(|_| rng.next_f64() * 3.0 - 1.5).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x.iter().sum::<f64>() * 1.7 + 0.3)
            .collect();
        let m = LinearRegression::fit(&xs, &ys, true);
        let back: LinearRegression =
            dse_util::json::from_str(&dse_util::json::to_string(&m)).unwrap();
        assert_eq!(back, m);
        for x in &xs {
            assert_eq!(m.predict(x).to_bits(), back.predict(x).to_bits());
        }
    }

    #[test]
    fn json_rejects_empty_weights() {
        let text = r#"{"weights":[],"intercept":0,"has_intercept":true}"#;
        assert!(dse_util::json::from_str::<LinearRegression>(text).is_err());
    }
}
