//! Feature and target standardisation.

use crate::stats;
use dse_util::json::{FromJson, Json, JsonError, ToJson};

/// Per-dimension standardiser: maps each feature to zero mean and unit
/// variance, fitted on training data. Constant dimensions map to zero.
///
/// # Examples
///
/// ```
/// use dse_ml::Standardizer;
/// let data = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
/// let s = Standardizer::fit(&data);
/// let t = s.transform(&data[0]);
/// assert!((t[0] + 1.0).abs() < 1e-12); // (1 - 2) / 1
/// assert_eq!(t[1], 0.0); // constant column
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits on a non-empty set of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have unequal lengths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit on no data");
        let dim = rows[0].len();
        let mut means = Vec::with_capacity(dim);
        let mut stds = Vec::with_capacity(dim);
        for d in 0..dim {
            let col: Vec<f64> = rows
                .iter()
                .map(|r| {
                    assert_eq!(r.len(), dim, "rows must have equal length");
                    r[d]
                })
                .collect();
            means.push(stats::mean(&col));
            stds.push(stats::std_dev(&col));
        }
        Self { means, stds }
    }

    /// Dimensionality this standardiser was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardises one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong length.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; row.len()];
        self.transform_into(row, &mut out);
        out
    }

    /// Standardises one row into a caller-provided buffer — the
    /// allocation-free path used by the batched MLP forward. The
    /// arithmetic is the transform the scalar path uses, element for
    /// element, so batched and scalar inference see bit-identical
    /// standardised inputs.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `out` has the wrong length.
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.dim(), "row length mismatch");
        assert_eq!(out.len(), self.dim(), "output length mismatch");
        for (o, (x, (m, s))) in out
            .iter_mut()
            .zip(row.iter().zip(self.means.iter().zip(&self.stds)))
        {
            *o = if *s > 0.0 { (x - m) / s } else { 0.0 };
        }
    }

    /// Inverts the transform for one dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn inverse(&self, dim: usize, value: f64) -> f64 {
        assert!(dim < self.dim(), "dimension out of range");
        value * self.stds[dim] + self.means[dim]
    }
}

impl ToJson for Standardizer {
    fn to_json(&self) -> Json {
        Json::obj([
            ("means", self.means.to_json()),
            ("stds", self.stds.to_json()),
        ])
    }
}

impl FromJson for Standardizer {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = Self {
            means: Vec::from_json(v.field("means")?)?,
            stds: Vec::from_json(v.field("stds")?)?,
        };
        if s.means.len() != s.stds.len() {
            return Err(JsonError::msg(format!(
                "standardizer has {} means but {} stds",
                s.means.len(),
                s.stds.len()
            )));
        }
        if s.means.is_empty() {
            return Err(JsonError::msg("standardizer has zero dimensions"));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_then_inverse_round_trips() {
        let rows = vec![vec![1.0, -5.0], vec![2.0, 0.0], vec![6.0, 5.0]];
        let s = Standardizer::fit(&rows);
        for row in &rows {
            let t = s.transform(row);
            for (d, orig) in row.iter().enumerate() {
                assert!((s.inverse(d, t[d]) - orig).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transformed_data_has_zero_mean_unit_std() {
        let mut rng = dse_rng::Xoshiro256::seed_from(3);
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.next_f64() * 100.0, rng.next_f64() - 50.0])
            .collect();
        let s = Standardizer::fit(&rows);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| s.transform(r)).collect();
        for d in 0..2 {
            let col: Vec<f64> = transformed.iter().map(|r| r[d]).collect();
            assert!(stats::mean(&col).abs() < 1e-9);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let rows = vec![vec![7.0], vec![7.0], vec![7.0]];
        let s = Standardizer::fit(&rows);
        assert_eq!(s.transform(&[7.0]), vec![0.0]);
        assert_eq!(s.transform(&[100.0]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        Standardizer::fit(&[]);
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let rows = vec![vec![1.0, -5.0, 0.3], vec![2.5, 0.0, 1e-7]];
        let s = Standardizer::fit(&rows);
        let back: Standardizer = dse_util::json::from_str(&dse_util::json::to_string(&s)).unwrap();
        assert_eq!(back, s);
        for row in &rows {
            let (a, b) = (s.transform(row), back.transform(row));
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn json_rejects_mismatched_dims() {
        assert!(dse_util::json::from_str::<Standardizer>(r#"{"means":[1,2],"stds":[1]}"#).is_err());
        assert!(dse_util::json::from_str::<Standardizer>(r#"{"means":[],"stds":[]}"#).is_err());
    }
}
