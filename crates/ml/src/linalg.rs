//! Minimal dense linear algebra: exactly what the regressors need.

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use dse_ml::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in matvec");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `Aᵀ A` (Gram matrix), computed directly for symmetry.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g.data[i * self.cols + j] += ri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g.data[i * self.cols + j] = g.data[j * self.cols + i];
            }
        }
        g
    }

    /// Solves `self * x = b` for a symmetric positive-definite matrix via
    /// Cholesky decomposition.
    ///
    /// Returns `None` if the matrix is not positive definite (within a
    /// small tolerance) — callers typically retry with a larger ridge.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve_spd needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        // Cholesky: self = L Lᵀ.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let i = Matrix::identity(3);
        let x = i.solve_spd(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = a.solve_spd(&[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_pd_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalue -1
        assert_eq!(a.solve_spd(&[1.0, 1.0]), None);
    }

    #[test]
    fn singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(a.solve_spd(&[2.0, 2.0]), None);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn gram_equals_transpose_times_self() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 10.0],
            vec![2.0, 1.0, 0.5],
        ]);
        let g = a.gram();
        let expect = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.get(i, j) - expect.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn solve_spd_random_system_round_trips() {
        // Build SPD as XᵀX + I and verify A·x ≈ b.
        let mut rng = dse_rng::Xoshiro256::seed_from(4);
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|_| (0..6).map(|_| rng.next_f64() * 2.0 - 1.0).collect())
            .collect();
        let x_mat = Matrix::from_rows(&rows);
        let mut a = x_mat.gram();
        for i in 0..6 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let b: Vec<f64> = (0..6).map(|i| i as f64 + 1.0).collect();
        let x = a.solve_spd(&b).unwrap();
        let back = a.matvec(&x);
        for (bi, bb) in back.iter().zip(b.iter()) {
            assert!((bi - bb).abs() < 1e-9);
        }
    }
}
