//! Radial-basis-function network regression.
//!
//! The paper's program-specific predictors are ANNs, but §5.2 notes that
//! "we could have used any other related approach", citing the RBF-based
//! predictor of Joseph et al. (MICRO-39). This module provides that
//! alternative: Gaussian kernels centred on a subset of the training
//! points, with output weights fitted by regularised least squares.
//! The `ablation_model` experiment compares it against the MLP.

use crate::linalg::Matrix;
use crate::scale::Standardizer;
use crate::stats;
use dse_rng::Xoshiro256;

/// Hyper-parameters of an [`RbfNetwork`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfConfig {
    /// Number of kernel centres (sampled from the training points;
    /// clamped to the training-set size).
    pub centers: usize,
    /// Kernel width multiplier: the Gaussian σ is this factor times the
    /// average distance between centres.
    pub width_factor: f64,
    /// Ridge regularisation for the output weights (relative).
    pub ridge: f64,
    /// Centre-sampling seed.
    pub seed: u64,
}

impl Default for RbfConfig {
    fn default() -> Self {
        Self {
            centers: 64,
            width_factor: 1.0,
            ridge: 1e-6,
            seed: 1,
        }
    }
}

/// A trained RBF network: `ŷ = Σ w_k exp(−‖x − c_k‖² / 2σ²) + b`.
///
/// # Examples
///
/// ```
/// use dse_ml::rbf::{RbfConfig, RbfNetwork};
/// let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 10.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
/// let net = RbfNetwork::train(&xs, &ys, &RbfConfig::default());
/// assert!((net.predict(&[2.0]) - 4.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RbfNetwork {
    centers: Vec<Vec<f64>>,
    weights: Vec<f64>,
    bias: f64,
    inv_two_sigma_sq: f64,
    x_scale: Standardizer,
    y_mean: f64,
    y_std: f64,
}

impl RbfNetwork {
    /// Trains on rows `xs` with targets `ys`.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or mismatched, or the
    /// configuration requests zero centres.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], cfg: &RbfConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot train on no data");
        assert!(cfg.centers > 0, "need at least one centre");

        let x_scale = Standardizer::fit(xs);
        let xn: Vec<Vec<f64>> = xs.iter().map(|x| x_scale.transform(x)).collect();
        let y_mean = stats::mean(ys);
        let y_std = {
            let s = stats::std_dev(ys);
            if s > 0.0 {
                s
            } else {
                1.0
            }
        };
        let yn: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        // Sample centres from the training points.
        let k = cfg.centers.min(xn.len());
        let mut rng = Xoshiro256::seed_from(cfg.seed);
        let centre_idx = rng.sample_indices(xn.len(), k);
        let centers: Vec<Vec<f64>> = centre_idx.iter().map(|&i| xn[i].clone()).collect();

        // σ from the mean pairwise centre distance (capped sample).
        let mut dists = Vec::new();
        for i in 0..k.min(32) {
            for j in (i + 1)..k.min(32) {
                dists.push(stats::euclidean(&centers[i], &centers[j]));
            }
        }
        let mean_dist = if dists.is_empty() {
            1.0
        } else {
            stats::mean(&dists).max(1e-6)
        };
        let sigma = cfg.width_factor * mean_dist;
        let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);

        // Design matrix Φ (n × (k+1)) with a bias column; ridge LS fit.
        let phi_rows: Vec<Vec<f64>> = xn
            .iter()
            .map(|x| {
                let mut row: Vec<f64> = centers
                    .iter()
                    .map(|c| (-stats::euclidean(x, c).powi(2) * inv_two_sigma_sq).exp())
                    .collect();
                row.push(1.0);
                row
            })
            .collect();
        let phi = Matrix::from_rows(&phi_rows);
        let mut gram = phi.gram();
        let n = gram.rows();
        let diag_mean: f64 = (0..n).map(|i| gram.get(i, i)).sum::<f64>() / n as f64;
        let phity = phi.transpose().matvec(&yn);
        let mut lambda = cfg.ridge * diag_mean.max(1e-12);
        let beta = loop {
            let mut g = gram.clone();
            for i in 0..n - 1 {
                g.set(i, i, g.get(i, i) + lambda);
            }
            if let Some(b) = g.solve_spd(&phity) {
                break b;
            }
            lambda *= 10.0;
            assert!(lambda.is_finite(), "RBF system unsolvable");
            gram = phi.gram();
        };
        let mut weights = beta;
        let bias = weights.pop().expect("bias column present");

        Self {
            centers,
            weights,
            bias,
            inv_two_sigma_sq,
            x_scale,
            y_mean,
            y_std,
        }
    }

    /// Predicts the target for one row.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let xn = self.x_scale.transform(x);
        let out: f64 = self.bias
            + self
                .centers
                .iter()
                .zip(&self.weights)
                .map(|(c, w)| w * (-stats::euclidean(&xn, c).powi(2) * self.inv_two_sigma_sq).exp())
                .sum::<f64>();
        out * self.y_std + self.y_mean
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of kernel centres in the trained model.
    pub fn centers(&self) -> usize {
        self.centers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{correlation, rmae};

    fn grid2(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| vec![rng.next_f64() * 4.0 - 2.0, rng.next_f64() * 4.0 - 2.0])
            .collect()
    }

    #[test]
    fn learns_nonlinear_surface() {
        let xs = grid2(400, 7);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0]).sin() + x[1] * x[1] + 10.0)
            .collect();
        let net = RbfNetwork::train(&xs, &ys, &RbfConfig::default());
        let preds = net.predict_batch(&xs);
        assert!(
            correlation(&preds, &ys) > 0.97,
            "corr {}",
            correlation(&preds, &ys)
        );
        assert!(rmae(&preds, &ys) < 3.0, "rmae {}", rmae(&preds, &ys));
    }

    #[test]
    fn generalises_to_unseen_points() {
        let train = grid2(400, 8);
        let test = grid2(100, 9);
        let f = |x: &[f64]| x[0] * x[1] + 5.0;
        let ys: Vec<f64> = train.iter().map(|x| f(x)).collect();
        let net = RbfNetwork::train(&train, &ys, &RbfConfig::default());
        let preds = net.predict_batch(&test);
        let actual: Vec<f64> = test.iter().map(|x| f(x)).collect();
        assert!(correlation(&preds, &actual) > 0.9);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let xs = grid2(64, 10);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 1.0).collect();
        let a = RbfNetwork::train(&xs, &ys, &RbfConfig::default());
        let b = RbfNetwork::train(&xs, &ys, &RbfConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn centers_clamped_to_training_size() {
        let xs = grid2(10, 11);
        let ys = vec![1.0; 10];
        let net = RbfNetwork::train(
            &xs,
            &ys,
            &RbfConfig {
                centers: 100,
                ..RbfConfig::default()
            },
        );
        assert_eq!(net.centers(), 10);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs = grid2(32, 12);
        let ys = vec![7.0; 32];
        let net = RbfNetwork::train(&xs, &ys, &RbfConfig::default());
        assert!((net.predict(&[0.0, 0.0]) - 7.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_input_panics() {
        RbfNetwork::train(&[vec![1.0]], &[1.0, 2.0], &RbfConfig::default());
    }
}
