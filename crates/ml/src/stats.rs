//! Evaluation statistics: the paper's error and correlation metrics plus
//! descriptive statistics for the design-space characterisation.

/// Relative mean absolute error in **percent** (§6.1):
/// `mean(|prediction − actual| / |actual|) × 100`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty, or if any
/// actual value is zero.
///
/// # Examples
///
/// ```
/// let rmae = dse_ml::stats::rmae(&[110.0, 90.0], &[100.0, 100.0]);
/// assert!((rmae - 10.0).abs() < 1e-12);
/// ```
pub fn rmae(predictions: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(predictions.len(), actuals.len(), "length mismatch");
    assert!(!actuals.is_empty(), "rmae of empty slice");
    let total: f64 = predictions
        .iter()
        .zip(actuals)
        .map(|(p, a)| {
            assert!(*a != 0.0, "actual value must be non-zero");
            ((p - a) / a).abs()
        })
        .sum();
    100.0 * total / actuals.len() as f64
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Population covariance of two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let (mx, my) = (mean(xs), mean(ys));
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation coefficient (§6.1): `cov(X, Y) / (σ_X σ_Y)`.
///
/// Returns 0 when either variable is constant (no linear relation can be
/// measured), matching the paper's "no linear relation" reading.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Examples
///
/// ```
/// let c = dse_ml::stats::correlation(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((c - 1.0).abs() < 1e-12);
/// ```
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let (sx, sy) = (std_dev(xs), std_dev(ys));
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Linear-interpolated quantile (`q` in `[0, 1]`) of a sample.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary used by Fig 4: minimum, 25 % quartile, median,
/// 75 % quartile and maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Smallest value.
    pub min: f64,
    /// 25 % quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75 % quartile.
    pub q75: f64,
    /// Largest value.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            min: quantile(xs, 0.0),
            q25: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q75: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
        }
    }
}

/// Euclidean distance between two equally long vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmae_of_perfect_prediction_is_zero() {
        assert_eq!(rmae(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmae_of_double_is_hundred_percent() {
        assert!((rmae(&[2.0, 4.0], &[1.0, 2.0]) - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rmae_rejects_zero_actual() {
        rmae(&[1.0], &[0.0]);
    }

    #[test]
    fn correlation_of_anticorrelated_is_minus_one() {
        let c = correlation(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
        assert!((c + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        assert_eq!(correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn correlation_is_scale_invariant() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_independent_noise_is_small() {
        let mut rng = dse_rng::Xoshiro256::seed_from(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        let ys: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        assert!(correlation(&xs, &ys).abs() < 0.05);
    }

    #[test]
    fn quantiles_of_known_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn five_number_is_ordered() {
        let mut rng = dse_rng::Xoshiro256::seed_from(2);
        let xs: Vec<f64> = (0..100).map(|_| rng.next_f64()).collect();
        let f = FiveNumber::of(&xs);
        assert!(f.min <= f.q25 && f.q25 <= f.median);
        assert!(f.median <= f.q75 && f.q75 <= f.max);
    }

    #[test]
    fn euclidean_matches_pythagoras() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_known_sample() {
        // Population std of [2,4,4,4,5,5,7,9] is 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }
}
