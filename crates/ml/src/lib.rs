//! Machine-learning substrate for the architecture-centric predictor.
//!
//! The paper's models are small and classical: multi-layer perceptrons with
//! one hidden layer of 10 neurons for the per-program predictors (§5.2),
//! and ordinary least-squares linear regression for the cross-program
//! combination (§5.3). Rust's ML ecosystem offers no canonical equivalents
//! of the exact classical stack, so this crate implements them from
//! scratch:
//!
//! * [`linalg`] — dense matrices, Cholesky and Gaussian solvers;
//! * [`scale`] — feature/target standardisation;
//! * [`mlp`] — feed-forward network, tanh hidden layer, linear output,
//!   mini-batch back-propagation with momentum (§5.2.1);
//! * [`rbf`] — radial-basis-function networks, the alternative
//!   program-specific model the paper cites (Joseph et al., MICRO-39);
//! * [`linreg`] — OLS via the normal equations with a ridge fallback
//!   (§5.3.1, equation 5);
//! * [`stats`] — the paper's evaluation metrics: relative mean absolute
//!   error and the Pearson correlation coefficient (§6.1), plus quantiles
//!   for the design-space characterisation (§4.1);
//! * [`cluster`] — agglomerative hierarchical clustering with average
//!   linkage and a text dendrogram, as used for program similarity (§4.2).

#![warn(missing_docs)]

pub mod cluster;
pub mod linalg;
pub mod linreg;
pub mod mlp;
pub mod rbf;
pub mod scale;
pub mod stats;

pub use cluster::{Dendrogram, Merge};
pub use linalg::Matrix;
pub use linreg::LinearRegression;
pub use mlp::{Mlp, MlpConfig};
pub use rbf::{RbfConfig, RbfNetwork};
pub use scale::Standardizer;
