//! Agglomerative hierarchical clustering with average linkage (§4.2).
//!
//! Reproduces the behaviour of R's `hclust(..., method = "average")` used
//! by the paper to build the program-similarity dendrograms of Fig 5:
//! repeatedly merge the two clusters with the smallest average pairwise
//! distance, recording the merge height.

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster: a leaf index (`Leaf`) or an earlier merge
    /// (`Node`, by merge index).
    pub left: ClusterId,
    /// Second merged cluster.
    pub right: ClusterId,
    /// Average inter-cluster distance at which the merge happened (the
    /// y-axis height in Fig 5).
    pub height: f64,
}

/// Identifier of a cluster during agglomeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterId {
    /// An original observation.
    Leaf(usize),
    /// The result of a previous merge (index into the merge list).
    Node(usize),
}

/// A complete agglomerative clustering of `n` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    labels: Vec<String>,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Clusters observations given a symmetric distance matrix, using
    /// average linkage (UPGMA).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations are given, the label count
    /// differs from the matrix size, or the matrix is not square.
    pub fn average_linkage(labels: &[String], distances: &[Vec<f64>]) -> Self {
        let n = labels.len();
        assert!(n >= 2, "need at least two observations");
        assert_eq!(distances.len(), n, "distance matrix must be n×n");
        for row in distances {
            assert_eq!(row.len(), n, "distance matrix must be n×n");
        }

        // Active clusters: id, member count, and current distances.
        #[derive(Clone)]
        struct Active {
            id: ClusterId,
            size: usize,
        }
        let mut active: Vec<Active> = (0..n)
            .map(|i| Active {
                id: ClusterId::Leaf(i),
                size: 1,
            })
            .collect();
        let mut dist: Vec<Vec<f64>> = distances.to_vec();
        let mut merges = Vec::with_capacity(n - 1);

        while active.len() > 1 {
            // Find the closest pair.
            let (mut bi, mut bj, mut best) = (0, 1, f64::INFINITY);
            for i in 0..active.len() {
                for j in (i + 1)..active.len() {
                    if dist[i][j] < best {
                        best = dist[i][j];
                        bi = i;
                        bj = j;
                    }
                }
            }
            // Average-linkage update (Lance–Williams): the distance from
            // the merged cluster to any other is the size-weighted mean.
            let (si, sj) = (active[bi].size as f64, active[bj].size as f64);
            let merged_id = ClusterId::Node(merges.len());
            merges.push(Merge {
                left: active[bi].id,
                right: active[bj].id,
                height: best,
            });

            let mut new_dist_row = Vec::with_capacity(active.len() - 1);
            for k in 0..active.len() {
                if k == bi || k == bj {
                    continue;
                }
                new_dist_row.push((si * dist[bi][k] + sj * dist[bj][k]) / (si + sj));
            }

            // Remove bj first (larger index), then bi.
            let merged = Active {
                id: merged_id,
                size: active[bi].size + active[bj].size,
            };
            active.remove(bj);
            active.remove(bi);
            for row in dist.iter_mut() {
                row.remove(bj);
                row.remove(bi);
            }
            dist.remove(bj);
            dist.remove(bi);

            // Append merged cluster.
            active.push(merged);
            for (row, &d) in dist.iter_mut().zip(&new_dist_row) {
                row.push(d);
            }
            let mut last = new_dist_row;
            last.push(0.0);
            dist.push(last);
        }

        Self {
            labels: labels.to_vec(),
            merges,
        }
    }

    /// The merge sequence, in increasing-height order of execution.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Observation labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Cuts the tree at `height`, returning the resulting clusters as sets
    /// of leaf indices (merges with `height > cut` are undone).
    pub fn cut(&self, height: f64) -> Vec<Vec<usize>> {
        // Union-find over leaves, applying merges up to the cut height.
        let n = self.labels.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        // A node's representative leaf.
        let mut node_leaf: Vec<usize> = Vec::with_capacity(self.merges.len());
        for m in &self.merges {
            let leaf_of = |id: ClusterId, node_leaf: &[usize]| match id {
                ClusterId::Leaf(i) => i,
                ClusterId::Node(k) => node_leaf[k],
            };
            let a = leaf_of(m.left, &node_leaf);
            let b = leaf_of(m.right, &node_leaf);
            node_leaf.push(a);
            if m.height <= height {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                parent[ra] = rb;
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        groups.into_values().collect()
    }

    /// Height at which a leaf first merges with anything (its isolation:
    /// outliers like `art` have the largest value).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn join_height(&self, leaf: usize) -> f64 {
        assert!(leaf < self.labels.len(), "leaf out of range");
        let mut members: Vec<Vec<usize>> = Vec::new();
        for m in &self.merges {
            let collect = |id: ClusterId, members: &[Vec<usize>]| match id {
                ClusterId::Leaf(i) => vec![i],
                ClusterId::Node(k) => members[k].clone(),
            };
            let mut all = collect(m.left, &members);
            let right = collect(m.right, &members);
            let involved = all.contains(&leaf) || right.contains(&leaf);
            all.extend(right);
            if involved && (all.len() > 1) {
                // First merge touching the leaf.
                let was_alone = matches!(m.left, ClusterId::Leaf(l) if l == leaf)
                    || matches!(m.right, ClusterId::Leaf(l) if l == leaf);
                if was_alone {
                    return m.height;
                }
            }
            members.push(all);
        }
        // The leaf is always merged by the final step.
        self.merges.last().map(|m| m.height).unwrap_or(0.0)
    }

    /// Renders the dendrogram as indented text, children sorted by height.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(last) = self.merges.len().checked_sub(1) {
            self.render_node(ClusterId::Node(last), 0, &mut out);
        } else {
            out.push_str(&self.labels[0]);
        }
        out
    }

    fn render_node(&self, id: ClusterId, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match id {
            ClusterId::Leaf(i) => {
                out.push_str(&format!("{pad}{}\n", self.labels[i]));
            }
            ClusterId::Node(k) => {
                let m = &self.merges[k];
                out.push_str(&format!("{pad}+- h={:.4}\n", m.height));
                self.render_node(m.left, depth + 1, out);
                self.render_node(m.right, depth + 1, out);
            }
        }
    }
}

/// Builds a Euclidean distance matrix from observation rows.
///
/// # Panics
///
/// Panics if rows have unequal widths.
pub fn distance_matrix(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = rows.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = crate::stats::euclidean(&rows[i], &rows[j]);
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn two_points_merge_once() {
        let d = distance_matrix(&[vec![0.0], vec![3.0]]);
        let dg = Dendrogram::average_linkage(&labels(&["a", "b"]), &d);
        assert_eq!(dg.merges().len(), 1);
        assert!((dg.merges()[0].height - 3.0).abs() < 1e-12);
    }

    #[test]
    fn close_pair_merges_before_outlier() {
        // a and b are close; c is far away.
        let rows = vec![vec![0.0], vec![1.0], vec![100.0]];
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&labels(&["a", "b", "c"]), &d);
        assert_eq!(dg.merges().len(), 2);
        assert!((dg.merges()[0].height - 1.0).abs() < 1e-12);
        // Average linkage: c merges at mean(99, 100) = 99.5.
        assert!((dg.merges()[1].height - 99.5).abs() < 1e-12);
        assert!(dg.join_height(2) > dg.join_height(0));
    }

    #[test]
    fn four_point_heights_match_hand_computation() {
        // 1-D points 0, 2, 10, 17. By hand:
        //   d(a,b)=2  d(a,c)=10  d(a,d)=17  d(b,c)=8  d(b,d)=15  d(c,d)=7
        //   merge {a,b} at 2; then {ab}-c = (10+8)/2 = 9, {ab}-d = 16,
        //   so merge {c,d} at 7; finally {ab}-{cd} = (10+17+8+15)/4 = 12.5.
        let rows = vec![vec![0.0], vec![2.0], vec![10.0], vec![17.0]];
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&labels(&["a", "b", "c", "d"]), &d);
        let m = dg.merges();
        assert_eq!(m.len(), 3);
        assert!((m[0].height - 2.0).abs() < 1e-12);
        assert_eq!(
            (m[0].left, m[0].right),
            (ClusterId::Leaf(0), ClusterId::Leaf(1))
        );
        assert!((m[1].height - 7.0).abs() < 1e-12);
        assert_eq!(
            (m[1].left, m[1].right),
            (ClusterId::Leaf(2), ClusterId::Leaf(3))
        );
        assert!((m[2].height - 12.5).abs() < 1e-12);
        assert_eq!(
            (m[2].left, m[2].right),
            (ClusterId::Node(0), ClusterId::Node(1))
        );
    }

    #[test]
    fn cut_separates_clusters() {
        let rows = vec![vec![0.0], vec![1.0], vec![50.0], vec![51.0]];
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&labels(&["a", "b", "c", "d"]), &d);
        let clusters = dg.cut(10.0);
        assert_eq!(clusters.len(), 2);
        let mut sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn cut_at_zero_isolates_everything() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0]];
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&labels(&["a", "b", "c"]), &d);
        assert_eq!(dg.cut(-1.0).len(), 3);
    }

    #[test]
    fn cut_above_max_height_gives_one_cluster() {
        let rows = vec![vec![0.0], vec![5.0], vec![9.0]];
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&labels(&["a", "b", "c"]), &d);
        assert_eq!(dg.cut(1e9).len(), 1);
    }

    #[test]
    fn merge_heights_are_nondecreasing_for_euclidean_data() {
        let mut rng = dse_rng::Xoshiro256::seed_from(5);
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|_| (0..3).map(|_| rng.next_f64() * 10.0).collect())
            .collect();
        let names: Vec<String> = (0..12).map(|i| format!("p{i}")).collect();
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&names, &d);
        // UPGMA on a metric space is monotone.
        for w in dg.merges().windows(2) {
            assert!(w[1].height >= w[0].height - 1e-9);
        }
    }

    #[test]
    fn outlier_has_largest_join_height() {
        let mut rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.1]).collect();
        rows.push(vec![500.0]); // the "art" of this dataset
        let names: Vec<String> = (0..9).map(|i| format!("p{i}")).collect();
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&names, &d);
        let outlier = dg.join_height(8);
        for i in 0..8 {
            assert!(outlier > dg.join_height(i));
        }
    }

    #[test]
    fn render_mentions_every_label() {
        let rows = vec![vec![0.0], vec![1.0], vec![9.0]];
        let d = distance_matrix(&rows);
        let dg = Dendrogram::average_linkage(&labels(&["alpha", "beta", "gamma"]), &d);
        let text = dg.render();
        for l in ["alpha", "beta", "gamma"] {
            assert!(text.contains(l), "missing {l} in:\n{text}");
        }
    }
}
