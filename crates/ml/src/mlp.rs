//! Multi-layer perceptron with one hidden layer (§5.2).
//!
//! Matches the paper's program-specific predictor: a feed-forward network
//! with one hidden layer of (by default) 10 neurons, a tanh activation on
//! the hidden layer, a linear output for regression, trained with
//! mini-batch back-propagation with momentum. Inputs and targets are
//! standardised internally, fitted on the training data.

use crate::scale::Standardizer;
use crate::stats;
use dse_rng::Xoshiro256;
use dse_util::json::{FromJson, Json, JsonError, ToJson};

/// Hyper-parameters of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width (the paper uses 10).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decays harmonically over epochs).
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// Weight-initialisation and shuffling seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 10,
            epochs: 200,
            learning_rate: 0.02,
            momentum: 0.9,
            batch: 32,
            seed: 1,
        }
    }
}

/// A trained feed-forward network: `input → tanh(hidden) → linear output`.
///
/// # Examples
///
/// ```
/// use dse_ml::{Mlp, MlpConfig};
/// // Learn y = 2 x0 - x1.
/// let xs: Vec<Vec<f64>> = (0..64)
///     .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
///     .collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1]).collect();
/// let net = Mlp::train(&xs, &ys, &MlpConfig::default());
/// let err = (net.predict(&[3.0, 4.0]) - 2.0).abs();
/// assert!(err < 0.5, "error {err}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    input_dim: usize,
    hidden: usize,
    /// `w1[j * input_dim + i]`: input `i` → hidden `j`.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Hidden `j` → output.
    w2: Vec<f64>,
    b2: f64,
    x_scale: Standardizer,
    y_mean: f64,
    y_std: f64,
}

impl Mlp {
    /// Trains a network on rows `xs` with targets `ys`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length, are empty, or contain
    /// rows of unequal width, or if the configuration has zero hidden
    /// neurons, epochs or batch size.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], cfg: &MlpConfig) -> Self {
        let _span = dse_obs::span!("mlp.fit", rows = xs.len(), epochs = cfg.epochs);
        {
            use dse_obs::registry::Counter;
            use std::sync::{Arc, OnceLock};
            static FITS: OnceLock<Arc<Counter>> = OnceLock::new();
            FITS.get_or_init(|| dse_obs::counter("dse_ml_mlp_fits_total"))
                .inc();
        }
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot train on no data");
        assert!(
            cfg.hidden > 0 && cfg.epochs > 0 && cfg.batch > 0,
            "hidden, epochs and batch must be positive"
        );
        let input_dim = xs[0].len();
        let x_scale = Standardizer::fit(xs);
        let y_mean = stats::mean(ys);
        let y_std = {
            let s = stats::std_dev(ys);
            if s > 0.0 {
                s
            } else {
                1.0
            }
        };
        let xn: Vec<Vec<f64>> = xs.iter().map(|x| x_scale.transform(x)).collect();
        let yn: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        let mut rng = Xoshiro256::seed_from(cfg.seed);
        let h = cfg.hidden;
        let init = |rng: &mut Xoshiro256, fan_in: usize| {
            let bound = 1.0 / (fan_in as f64).sqrt();
            (rng.next_f64() * 2.0 - 1.0) * bound
        };
        let mut w1: Vec<f64> = (0..h * input_dim)
            .map(|_| init(&mut rng, input_dim))
            .collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..h).map(|_| init(&mut rng, h)).collect();
        let mut b2 = 0.0;

        // Momentum buffers.
        let mut vw1 = vec![0.0; w1.len()];
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![0.0; h];
        let mut vb2 = 0.0;

        let mut order: Vec<usize> = (0..xn.len()).collect();
        let mut hidden_out = vec![0.0; h];

        for epoch in 0..cfg.epochs {
            let lr = cfg.learning_rate / (1.0 + 4.0 * epoch as f64 / cfg.epochs as f64);
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch) {
                // Accumulate gradients over the mini-batch.
                let mut gw1 = vec![0.0; w1.len()];
                let mut gb1 = vec![0.0; h];
                let mut gw2 = vec![0.0; h];
                let mut gb2 = 0.0;
                for &i in chunk {
                    let x = &xn[i];
                    // Forward.
                    for j in 0..h {
                        let mut a = b1[j];
                        let row = &w1[j * input_dim..(j + 1) * input_dim];
                        for (wji, xi) in row.iter().zip(x) {
                            a += wji * xi;
                        }
                        hidden_out[j] = a.tanh();
                    }
                    let mut out = b2;
                    for j in 0..h {
                        out += w2[j] * hidden_out[j];
                    }
                    // Backward (squared-error loss, d = out - target).
                    let d = out - yn[i];
                    gb2 += d;
                    for j in 0..h {
                        gw2[j] += d * hidden_out[j];
                        let dh = d * w2[j] * (1.0 - hidden_out[j] * hidden_out[j]);
                        gb1[j] += dh;
                        let grow = &mut gw1[j * input_dim..(j + 1) * input_dim];
                        for (g, xi) in grow.iter_mut().zip(x) {
                            *g += dh * xi;
                        }
                    }
                }
                let scale = lr / chunk.len() as f64;
                for (w, (v, g)) in w1.iter_mut().zip(vw1.iter_mut().zip(&gw1)) {
                    *v = cfg.momentum * *v - scale * g;
                    *w += *v;
                }
                for (w, (v, g)) in b1.iter_mut().zip(vb1.iter_mut().zip(&gb1)) {
                    *v = cfg.momentum * *v - scale * g;
                    *w += *v;
                }
                for (w, (v, g)) in w2.iter_mut().zip(vw2.iter_mut().zip(&gw2)) {
                    *v = cfg.momentum * *v - scale * g;
                    *w += *v;
                }
                vb2 = cfg.momentum * vb2 - scale * gb2;
                b2 += vb2;
            }
        }

        Self {
            input_dim,
            hidden: h,
            w1,
            b1,
            w2,
            b2,
            x_scale,
            y_mean,
            y_std,
        }
    }

    /// Predicts the target for one input row.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the training dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let xn = self.x_scale.transform(x);
        let mut out = self.b2;
        for j in 0..self.hidden {
            let mut a = self.b1[j];
            let row = &self.w1[j * self.input_dim..(j + 1) * self.input_dim];
            for (w, xi) in row.iter().zip(&xn) {
                a += w * xi;
            }
            out += self.w2[j] * a.tanh();
        }
        out * self.y_std + self.y_mean
    }

    /// Predicts a batch of rows.
    ///
    /// Convenience shim over [`Mlp::predict_batch_into`]: flattens the
    /// rows into one contiguous buffer and runs the blocked forward.
    ///
    /// # Panics
    ///
    /// Panics if any row does not match the training dimensionality.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let d = self.input_dim;
        let mut flat = Vec::with_capacity(xs.len() * d);
        for x in xs {
            assert_eq!(x.len(), d, "input dimension mismatch");
            flat.extend_from_slice(x);
        }
        let mut out = vec![0.0; xs.len()];
        self.predict_batch_into(&flat, xs.len(), &mut out);
        out
    }

    /// True matrix–matrix forward over a flat row-major batch:
    /// `xs[r * input_dim + i]` is feature `i` of row `r`, and the `r`-th
    /// prediction lands in `out[r]`.
    ///
    /// Rows are processed in blocks of [`Self::ROW_BLOCK`] with the
    /// standardised inputs transposed per block (`xn_t[i * B + r]`), so
    /// the hot inner loop is a fixed-width independent-accumulator sweep
    /// across the block — autovectorization-friendly — while each row's
    /// own accumulation order is exactly the scalar [`Mlp::predict`]
    /// order (`b1[j]` then features in `i`-order; output from `b2` in
    /// `j`-order). Batched results are therefore bit-identical to the
    /// scalar path, which the serving layer's end-to-end identity tests
    /// rely on.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != n_rows * input_dim` or `out` is shorter
    /// than `n_rows`.
    pub fn predict_batch_into(&self, xs: &[f64], n_rows: usize, out: &mut [f64]) {
        let d = self.input_dim;
        assert_eq!(xs.len(), n_rows * d, "batch buffer length mismatch");
        assert!(out.len() >= n_rows, "output buffer too short");
        const B: usize = Mlp::ROW_BLOCK;
        let mut row = vec![0.0; d];
        let mut xn_t = vec![0.0; d * B];
        let mut base = 0;
        while base < n_rows {
            let rows = (n_rows - base).min(B);
            if rows < B {
                // Tail block: zero the unused lanes so the full-width
                // arithmetic below never touches stale values.
                xn_t.iter_mut().for_each(|v| *v = 0.0);
            }
            for r in 0..rows {
                let x = &xs[(base + r) * d..(base + r + 1) * d];
                self.x_scale.transform_into(x, &mut row);
                for i in 0..d {
                    xn_t[i * B + r] = row[i];
                }
            }
            let mut oacc = [self.b2; B];
            for j in 0..self.hidden {
                let w1row = &self.w1[j * d..(j + 1) * d];
                let mut acc = [self.b1[j]; B];
                for i in 0..d {
                    let w = w1row[i];
                    let col = &xn_t[i * B..i * B + B];
                    for r in 0..B {
                        acc[r] += w * col[r];
                    }
                }
                let w2j = self.w2[j];
                for r in 0..rows {
                    oacc[r] += w2j * acc[r].tanh();
                }
            }
            for r in 0..rows {
                out[base + r] = oacc[r] * self.y_std + self.y_mean;
            }
            base += rows;
        }
    }

    /// Rows per block in the batched forward (`predict_batch_into`).
    pub const ROW_BLOCK: usize = 8;

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimensionality this network was trained on.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }
}

impl ToJson for Mlp {
    fn to_json(&self) -> Json {
        Json::obj([
            ("input_dim", self.input_dim.to_json()),
            ("hidden", self.hidden.to_json()),
            ("w1", self.w1.to_json()),
            ("b1", self.b1.to_json()),
            ("w2", self.w2.to_json()),
            ("b2", self.b2.to_json()),
            ("x_scale", self.x_scale.to_json()),
            ("y_mean", self.y_mean.to_json()),
            ("y_std", self.y_std.to_json()),
        ])
    }
}

impl FromJson for Mlp {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let net = Self {
            input_dim: usize::from_json(v.field("input_dim")?)?,
            hidden: usize::from_json(v.field("hidden")?)?,
            w1: Vec::from_json(v.field("w1")?)?,
            b1: Vec::from_json(v.field("b1")?)?,
            w2: Vec::from_json(v.field("w2")?)?,
            b2: f64::from_json(v.field("b2")?)?,
            x_scale: Standardizer::from_json(v.field("x_scale")?)?,
            y_mean: f64::from_json(v.field("y_mean")?)?,
            y_std: f64::from_json(v.field("y_std")?)?,
        };
        // A network whose weight shapes disagree with its declared
        // dimensions would panic (or silently mispredict) at inference —
        // reject the artifact instead.
        if net.input_dim == 0 || net.hidden == 0 {
            return Err(JsonError::msg("mlp dimensions must be positive"));
        }
        if net.w1.len() != net.hidden * net.input_dim {
            return Err(JsonError::msg(format!(
                "w1 has {} weights for {}x{} layer",
                net.w1.len(),
                net.hidden,
                net.input_dim
            )));
        }
        if net.b1.len() != net.hidden || net.w2.len() != net.hidden {
            return Err(JsonError::msg(format!(
                "hidden layer {} disagrees with b1 {} / w2 {}",
                net.hidden,
                net.b1.len(),
                net.w2.len()
            )));
        }
        if net.x_scale.dim() != net.input_dim {
            return Err(JsonError::msg(format!(
                "standardizer dim {} disagrees with input dim {}",
                net.x_scale.dim(),
                net.input_dim
            )));
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{correlation, rmae};

    fn grid2(n: usize) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256::seed_from(77);
        (0..n)
            .map(|_| vec![rng.next_f64() * 4.0 - 2.0, rng.next_f64() * 4.0 - 2.0])
            .collect()
    }

    #[test]
    fn learns_linear_function() {
        let xs = grid2(256);
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let net = Mlp::train(&xs, &ys, &MlpConfig::default());
        let preds = net.predict_batch(&xs);
        assert!(correlation(&preds, &ys) > 0.99);
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = x0 * x1 is not linearly representable.
        let xs = grid2(512);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1] + 10.0).collect();
        let cfg = MlpConfig {
            epochs: 500,
            ..MlpConfig::default()
        };
        let net = Mlp::train(&xs, &ys, &cfg);
        let preds = net.predict_batch(&xs);
        assert!(
            correlation(&preds, &ys) > 0.95,
            "corr {}",
            correlation(&preds, &ys)
        );
        assert!(rmae(&preds, &ys) < 5.0, "rmae {}", rmae(&preds, &ys));
    }

    #[test]
    fn drives_rmse_below_threshold_on_1d_nonlinear_function() {
        // Fixed-seed 1-D regression of y = sin(2x): a smooth nonlinear
        // target a 10-neuron tanh net must fit well. RMSE is an absolute
        // quality bar, unlike the correlation checks above.
        let xs: Vec<Vec<f64>> = (0..128).map(|i| vec![i as f64 / 32.0 - 2.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.0 * x[0]).sin()).collect();
        let cfg = MlpConfig {
            epochs: 1_500,
            ..MlpConfig::default()
        };
        let net = Mlp::train(&xs, &ys, &cfg);
        let preds = net.predict_batch(&xs);
        let rmse = (preds
            .iter()
            .zip(&ys)
            .map(|(p, y)| (p - y) * (p - y))
            .sum::<f64>()
            / ys.len() as f64)
            .sqrt();
        assert!(rmse < 0.1, "training RMSE {rmse} above threshold");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let xs = grid2(64);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + x[1]).collect();
        let a = Mlp::train(&xs, &ys, &MlpConfig::default());
        let b = Mlp::train(&xs, &ys, &MlpConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.predict(&[0.5, 0.5]), b.predict(&[0.5, 0.5]));
    }

    #[test]
    fn different_seeds_differ() {
        let xs = grid2(64);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + x[1]).collect();
        let a = Mlp::train(&xs, &ys, &MlpConfig::default());
        let b = Mlp::train(
            &xs,
            &ys,
            &MlpConfig {
                seed: 2,
                ..MlpConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn more_training_data_helps_generalisation() {
        let f = |x: &[f64]| (x[0] * 1.5).sin() + 0.5 * x[1];
        let test = grid2(200);
        let test_y: Vec<f64> = test.iter().map(|x| f(x) + 100.0).collect();
        let err_with = |n: usize| {
            let mut rng = Xoshiro256::seed_from(n as u64);
            let xs: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.next_f64() * 4.0 - 2.0, rng.next_f64() * 4.0 - 2.0])
                .collect();
            let ys: Vec<f64> = xs.iter().map(|x| f(x) + 100.0).collect();
            let net = Mlp::train(&xs, &ys, &MlpConfig::default());
            rmae(&net.predict_batch(&test), &test_y)
        };
        let few = err_with(8);
        let many = err_with(512);
        assert!(many < few, "many {many} few {few}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs = grid2(32);
        let ys = vec![42.0; 32];
        let net = Mlp::train(&xs, &ys, &MlpConfig::default());
        assert!((net.predict(&[0.0, 0.0]) - 42.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Mlp::train(&[vec![1.0]], &[1.0, 2.0], &MlpConfig::default());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_dim_panics() {
        let net = Mlp::train(&[vec![1.0], vec![2.0]], &[1.0, 2.0], &MlpConfig::default());
        net.predict(&[1.0, 2.0]);
    }

    #[test]
    fn json_round_trip_predicts_bit_identically() {
        let xs = grid2(64);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1] - 0.3 * x[0]).collect();
        let net = Mlp::train(&xs, &ys, &MlpConfig::default());
        let text = dse_util::json::to_string(&net);
        let back: Mlp = dse_util::json::from_str(&text).unwrap();
        assert_eq!(back, net);
        for x in &xs {
            assert_eq!(
                net.predict(x).to_bits(),
                back.predict(x).to_bits(),
                "prediction changed across save/load at {x:?}"
            );
        }
    }

    #[test]
    fn json_rejects_inconsistent_shapes() {
        let net = Mlp::train(&grid2(16), &vec![1.0; 16], &MlpConfig::default());
        let good = dse_util::json::to_string(&net);
        // Splice an extra weight into w1: shape check must fire.
        let bad = good.replacen("\"w1\":[", "\"w1\":[0.0,", 1);
        assert!(dse_util::json::from_str::<Mlp>(&bad).is_err());
        let bad_hidden = good.replacen("\"hidden\":10", "\"hidden\":9", 1);
        assert!(dse_util::json::from_str::<Mlp>(&bad_hidden).is_err());
    }
}
