//! The batched MLP forward must be *bit-identical* per row to the scalar
//! [`Mlp::predict`] — the serving and exploration layers route everything
//! through the batched path precisely because it changes nothing but
//! speed. These tests pin the contract across block boundaries, ragged
//! tails and degenerate shapes.

use dse_ml::{Mlp, MlpConfig};
use dse_rng::Xoshiro256;

/// Batch sizes straddling every interesting boundary of the 8-row block:
/// empty, single, one-short-of-a-block, exactly one block, many blocks,
/// and a large ragged batch.
const SIZES: [usize; 6] = [0, 1, 7, 8, 64, 1000];

fn train_net(input_dim: usize, hidden: usize, seed: u64) -> Mlp {
    let mut rng = Xoshiro256::seed_from(seed);
    let xs: Vec<Vec<f64>> = (0..96)
        .map(|_| {
            (0..input_dim)
                .map(|_| rng.next_f64() * 10.0 - 5.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            x.iter()
                .enumerate()
                .map(|(i, v)| (i as f64 + 1.0) * v)
                .sum::<f64>()
        })
        .collect();
    let cfg = MlpConfig {
        hidden,
        epochs: 40,
        seed,
        ..MlpConfig::default()
    };
    Mlp::train(&xs, &ys, &cfg)
}

fn random_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.next_f64() * 20.0 - 10.0).collect())
        .collect()
}

fn assert_bit_identical(net: &Mlp, rows: &[Vec<f64>]) {
    let scalar: Vec<f64> = rows.iter().map(|r| net.predict(r)).collect();

    // The Vec-of-rows convenience wrapper.
    let batched = net.predict_batch(rows);
    assert_eq!(batched.len(), rows.len());
    for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "predict_batch row {i}: scalar {s:e} vs batched {b:e}"
        );
    }

    // The flat-slice core, with an oversized output buffer to check only
    // the first `n_rows` slots are written.
    let dim = rows.first().map_or(0, |r| r.len());
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    let sentinel = f64::from_bits(0x7ff8_dead_beef_0001);
    let mut out = vec![sentinel; rows.len() + 3];
    net.predict_batch_into(&flat, rows.len(), &mut out);
    let _ = dim;
    for (i, (s, b)) in scalar.iter().zip(&out).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "predict_batch_into row {i}: scalar {s:e} vs batched {b:e}"
        );
    }
    for (i, tail) in out[rows.len()..].iter().enumerate() {
        assert_eq!(
            tail.to_bits(),
            sentinel.to_bits(),
            "predict_batch_into wrote past n_rows at slot {}",
            rows.len() + i
        );
    }
}

#[test]
fn batched_forward_is_bit_identical_across_sizes() {
    let net = train_net(13, 10, 7);
    for (k, &n) in SIZES.iter().enumerate() {
        let rows = random_rows(n, 13, 100 + k as u64);
        assert_bit_identical(&net, &rows);
    }
}

#[test]
fn batched_forward_is_bit_identical_for_odd_shapes() {
    // Widths and hidden sizes that do not divide the row block evenly.
    for &(dim, hidden) in &[(1usize, 1usize), (3, 5), (13, 10), (17, 23)] {
        let net = train_net(dim, hidden, 31 + dim as u64);
        for &n in &[1usize, 7, 8, 9, 33] {
            let rows = random_rows(n, dim, 500 + n as u64);
            assert_bit_identical(&net, &rows);
        }
    }
}

#[test]
fn batched_forward_survives_json_round_trip() {
    // A deserialised network (the serving path: artifacts come off disk)
    // must keep the identity too.
    let net = train_net(13, 10, 99);
    let back: Mlp = dse_util::json::from_str(&dse_util::json::to_string(&net)).unwrap();
    let rows = random_rows(64, 13, 4242);
    let scalar: Vec<f64> = rows.iter().map(|r| net.predict(r)).collect();
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    let mut out = vec![0.0; rows.len()];
    back.predict_batch_into(&flat, rows.len(), &mut out);
    for (i, (s, b)) in scalar.iter().zip(&out).enumerate() {
        assert_eq!(s.to_bits(), b.to_bits(), "row {i} diverged after reload");
    }
}

#[test]
fn extreme_inputs_stay_bit_identical() {
    // Saturated tanh regions, zeros, and sign flips — the places where a
    // reassociated accumulation would first show a 1-ulp drift.
    let net = train_net(4, 10, 11);
    let rows = vec![
        vec![0.0, 0.0, 0.0, 0.0],
        vec![1e6, -1e6, 1e-12, -1e-12],
        vec![-5.0, 5.0, -5.0, 5.0],
        vec![f64::MIN_POSITIVE, 1.0, -1.0, 0.5],
        vec![1e300, -1e300, 1.0, -1.0],
    ];
    assert_bit_identical(&net, &rows);
}
