//! Predictor-guided hill climbing over the FULL design space.
//!
//! This is what the paper's model is for: once a new program is
//! characterised by 32 simulations, the predictor evaluates *any* of the
//! ~19 billion legal configurations in microseconds, so classic local
//! search becomes practical. We minimise predicted ED starting from the
//! paper's baseline, then verify the found design in the real simulator.
//!
//! Run with: `cargo run --release --example hill_climb`

use archdse::prelude::*;
use dse_space::neighbors;

fn main() {
    // Offline knowledge: 7 SPEC programs; the 8th is the "new" program.
    let profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(8)
        .collect();
    let spec = DatasetSpec {
        n_configs: 250,
        trace_len: 30_000,
        warmup: 6_000,
        seed: 33,
    };
    println!(
        "simulating {} programs x {} configs...",
        profiles.len(),
        spec.n_configs
    );
    let ds = SuiteDataset::generate(&profiles, &spec);
    let target = ds.benchmarks.len() - 1;
    let target_name = ds.benchmarks[target].name.clone();

    let train_rows: Vec<usize> = (0..target).collect();
    let offline = OfflineModel::train(&ds, &train_rows, Metric::Ed, 200, &MlpConfig::default(), 4);
    let response_idxs: Vec<usize> = (0..32).collect();
    let response_values: Vec<f64> = response_idxs
        .iter()
        .map(|&i| ds.benchmarks[target].metrics[i].ed)
        .collect();
    let predictor = offline.fit_responses(&ds, &response_idxs, &response_values);
    let predict = |c: &Config| predictor.predict(&c.to_features());

    // Hill-climb from the baseline over one-step neighbours.
    let mut current = Config::baseline();
    let mut current_score = predict(&current);
    let mut steps = 0;
    loop {
        let Some((best, score)) = neighbors(&current)
            .into_iter()
            .map(|n| {
                let s = predict(&n);
                (n, s)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        else {
            break;
        };
        if score >= current_score || steps >= 100 {
            break;
        }
        current = best;
        current_score = score;
        steps += 1;
    }
    println!("\nhill climb for '{target_name}' (minimise ED): {steps} steps");
    println!("  start : {}", Config::baseline());
    println!("  found : {current}");

    // Verify in the real simulator (these 2 runs are the only extra cost).
    let profile = profiles.last().unwrap();
    let trace = TraceGenerator::new(profile).generate(spec.trace_len);
    let opts = SimOptions::with_warmup(spec.warmup);
    let before = simulate(&Config::baseline(), &trace, opts);
    let after = simulate(&current, &trace, opts);
    println!("\n                 baseline        found");
    println!("  actual ED   : {:11.4e}  {:11.4e}", before.ed, after.ed);
    println!(
        "  actual cyc  : {:11.4e}  {:11.4e}",
        before.cycles, after.cycles
    );
    println!(
        "  actual nJ   : {:11.4e}  {:11.4e}",
        before.energy, after.energy
    );
    println!(
        "\nED improvement: {:.1}% (predicted at the cost of 32 + 2 simulations)",
        100.0 * (1.0 - after.ed / before.ed)
    );
}
