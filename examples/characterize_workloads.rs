//! Workload characterisation: per-program design-space statistics and the
//! program-similarity dendrogram (the paper's §4 analysis).
//!
//! Run with: `cargo run --release --example characterize_workloads`

use archdse::core::analysis::{characterise, similarity};
use archdse::prelude::*;

fn main() {
    let mut profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .filter(|p| {
            ["gzip", "parser", "art", "mcf", "swim", "crafty", "sixtrack"].contains(&p.name)
        })
        .collect();
    profiles.sort_by_key(|p| p.name);
    let spec = DatasetSpec {
        n_configs: 200,
        trace_len: 30_000,
        warmup: 6_000,
        seed: 5,
    };
    println!(
        "simulating {} programs x {} configs...",
        profiles.len(),
        spec.n_configs
    );
    let ds = SuiteDataset::generate(&profiles, &spec);

    println!("\nper-program cycles across the sampled space (per 10M-instr phase):");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>8}",
        "program", "min", "median", "max", "max/min"
    );
    for c in characterise(&ds, Metric::Cycles) {
        println!(
            "{:>10}  {:10.3e}  {:10.3e}  {:10.3e}  {:8.1}",
            c.program,
            c.summary.min,
            c.summary.median,
            c.summary.max,
            c.summary.max / c.summary.min
        );
    }

    println!("\nprogram similarity (energy, average-linkage dendrogram):");
    let dg = similarity(&ds, Metric::Energy);
    print!("{}", dg.render());
    println!("\n('art' and 'mcf' should sit on their own branches, as in Fig 5)");
}
