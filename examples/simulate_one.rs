//! Direct simulator use: run one benchmark on two configurations and
//! inspect the microarchitectural statistics.
//!
//! Run with: `cargo run --release --example simulate_one`

use archdse::prelude::*;
use dse_sim::simulate_detailed;

fn main() {
    let profile = archdse::workload::suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gcc")
        .unwrap();
    let trace = TraceGenerator::new(&profile).generate(60_000);
    let opts = SimOptions::with_warmup(15_000);

    let big = Config {
        width: 8,
        rob: 160,
        iq: 80,
        lsq: 80,
        rf: 160,
        rf_read: 16,
        rf_write: 8,
        bpred_k: 32,
        btb_k: 4,
        max_branches: 32,
        icache_kb: 128,
        dcache_kb: 128,
        l2_kb: 4096,
    };

    for (name, cfg) in [("baseline", Config::baseline()), ("big", big)] {
        let (r, m) = simulate_detailed(&cfg, &trace, opts);
        println!("== {name}: {cfg}");
        println!("  IPC          : {:.3}", r.ipc);
        println!("  L1I miss     : {:.2}%", 100.0 * r.l1i_miss_rate);
        println!("  L1D miss     : {:.2}%", 100.0 * r.l1d_miss_rate);
        println!("  L2 miss      : {:.2}%", 100.0 * r.l2_miss_rate);
        println!("  bpred miss   : {:.2}%", 100.0 * r.bpred_miss_rate);
        println!("  cycles/phase : {:.3e}", m.cycles);
        println!("  energy/phase : {:.3e} nJ", m.energy);
        println!("  ED           : {:.3e}", m.ed);
        println!("  EDD          : {:.3e}\n", m.edd);
    }
}
