//! Design-space exploration with the predictor: find low-ED ("sweet
//! spot") configurations for a new program from 32 simulations, then
//! check the recommendation against ground truth.
//!
//! This is the paper's motivating use case: the model stands in for the
//! simulator when ranking candidate designs.
//!
//! Run with: `cargo run --release --example explore_design_space`

use archdse::prelude::*;
use dse_rng::Xoshiro256;

fn main() {
    let profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(8)
        .collect();
    let spec = DatasetSpec {
        n_configs: 300,
        trace_len: 30_000,
        warmup: 6_000,
        seed: 9,
    };
    println!(
        "simulating {} programs x {} configs...",
        profiles.len(),
        spec.n_configs
    );
    let ds = SuiteDataset::generate(&profiles, &spec);

    // The "new" program is the last one; everything else trains offline.
    let target = ds.benchmarks.len() - 1;
    let train_rows: Vec<usize> = (0..target).collect();
    let offline = OfflineModel::train(&ds, &train_rows, Metric::Ed, 200, &MlpConfig::default(), 3);

    let mut rng = Xoshiro256::seed_from(1);
    let response_idxs = rng.sample_indices(ds.n_configs(), 32);
    let response_values: Vec<f64> = response_idxs
        .iter()
        .map(|&i| ds.benchmarks[target].metrics[i].ed)
        .collect();
    let predictor = offline.fit_responses(&ds, &response_idxs, &response_values);

    // Rank the whole sampled space by predicted ED.
    let features = ds.features();
    let mut ranked: Vec<(usize, f64)> = (0..ds.n_configs())
        .map(|i| (i, predictor.predict(&features[i])))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    let actual: Vec<f64> = ds.benchmarks[target].values(Metric::Ed);
    let true_best = actual.iter().cloned().fold(f64::INFINITY, f64::min);

    println!(
        "\ntop-5 predicted ED configurations for '{}':",
        ds.benchmarks[target].name
    );
    println!(
        "{:>4}  {:>12}  {:>12}  config",
        "rank", "predicted", "actual"
    );
    for (rank, &(idx, pred)) in ranked.iter().take(5).enumerate() {
        println!(
            "{rank:>4}  {pred:12.4e}  {:12.4e}  {}",
            actual[idx], ds.configs[idx]
        );
    }
    let best_found = ranked[..5]
        .iter()
        .map(|&(i, _)| actual[i])
        .fold(f64::INFINITY, f64::min);
    println!("\ntrue optimum in sample : {true_best:.4e}");
    println!(
        "best of predicted top-5: {best_found:.4e} ({:.1}% above optimum)",
        100.0 * (best_found / true_best - 1.0)
    );
    println!(
        "simulations spent      : 32 (instead of {})",
        ds.n_configs()
    );
}
