//! Quickstart: simulate a benchmark, train the architecture-centric
//! predictor on a handful of programs, and predict a new program's design
//! space from 16 responses.
//!
//! Run with: `cargo run --release --example quickstart`

use archdse::prelude::*;
use dse_ml::stats::{correlation, rmae};

fn main() {
    // 1. Build a small dataset: 6 SPEC stand-ins on 150 shared
    //    configurations (the paper uses 26 programs x 3,000 configs; see
    //    the `gen_dataset` binary for the full protocol).
    let profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(6)
        .collect();
    let spec = DatasetSpec {
        n_configs: 150,
        trace_len: 30_000,
        warmup: 6_000,
        seed: 42,
    };
    println!(
        "simulating {} programs x {} configs...",
        profiles.len(),
        spec.n_configs
    );
    let ds = SuiteDataset::generate(&profiles, &spec);

    // 2. Train the offline half on the first five programs.
    let train_rows: Vec<usize> = (0..5).collect();
    let offline = OfflineModel::train(
        &ds,
        &train_rows,
        Metric::Cycles,
        100,
        &MlpConfig::default(),
        7,
    );

    // 3. "Encounter" the sixth program: simulate only 16 responses.
    let new_program = &ds.benchmarks[5];
    println!("predicting unseen program: {}", new_program.name);
    let response_idxs: Vec<usize> = (0..16).collect();
    let response_values: Vec<f64> = response_idxs
        .iter()
        .map(|&i| new_program.metrics[i].cycles)
        .collect();
    let predictor = offline.fit_responses(&ds, &response_idxs, &response_values);

    // 4. Predict the rest of the space and compare against the truth.
    let features = ds.features();
    let preds: Vec<f64> = (16..ds.n_configs())
        .map(|i| predictor.predict(&features[i]))
        .collect();
    let actual: Vec<f64> = (16..ds.n_configs())
        .map(|i| new_program.metrics[i].cycles)
        .collect();
    println!(
        "predicted {} unseen configurations: rmae {:.1}%, correlation {:.3}",
        preds.len(),
        rmae(&preds, &actual),
        correlation(&preds, &actual)
    );
    println!("combination weights over training programs:");
    for (w, row) in predictor.weights().iter().zip(&train_rows) {
        println!("  {:10} {w:+.3}", ds.benchmarks[*row].name);
    }
}
