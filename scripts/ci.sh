#!/usr/bin/env bash
# Tier-1 gate: the workspace must build and test OFFLINE with an empty
# registry cache (zero external dependencies), and stay rustfmt-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

# The default test pass already sanitizes (debug builds default the
# sanitizer on), but run once with the flag forced so the env-var path
# itself can't bit-rot.
echo "== ARCHDSE_SANITIZE=1 cargo test -q --offline =="
ARCHDSE_SANITIZE=1 cargo test -q --offline

# The lockstep sweep path must stay sanitizable too: force both the
# sanitizer and a batch width >1 over the batched/golden/oracle suites,
# so the per-lane InvariantChecker cannot silently go dead on the
# batched hot path (the suites assert checker violations still surface
# lane-for-lane).
echo "== ARCHDSE_SANITIZE=1 ARCHDSE_BATCH=4 batched suites =="
ARCHDSE_SANITIZE=1 ARCHDSE_BATCH=4 cargo test -q --offline \
  --test batch_sim --test golden_sim --test differential_oracle

# The explorer's ground-truth simulations must stay sanitizable: force
# the checker over the frontier/determinism suites (the determinism one
# also pins byte-identity across thread/batch settings under sanitize).
echo "== ARCHDSE_SANITIZE=1 explore suites =="
ARCHDSE_SANITIZE=1 cargo test -q --offline \
  --test explore_frontier --test explore_determinism

# The serve front end has two pollers (epoll, with a poll(2) fallback);
# the default test pass exercises epoll, so rerun the serve suites with
# the fallback forced — sanitized, so the event loop stays checkable on
# both paths.
echo "== ARCHDSE_SANITIZE=1 DSE_SERVE_POLL=1 serve suites =="
ARCHDSE_SANITIZE=1 DSE_SERVE_POLL=1 cargo test -q --offline -p dse-serve

# Observability: the test pass must also hold with spans/metrics forced
# on (golden_sim pins bit-identity either way), and `train --obs json`
# must emit span JSONL that `obs report` can parse back. Skip with
# DSE_OBS_SKIP=1.
if [ "${DSE_OBS_SKIP:-0}" = "1" ]; then
  echo "== obs gate skipped (DSE_OBS_SKIP=1) =="
else
  echo "== ARCHDSE_OBS=1 cargo test -q --offline =="
  ARCHDSE_OBS=1 cargo test -q --offline
  echo "== obs smoke: train --obs json | obs report =="
  OBS_DIR="$(mktemp -d)"
  trap 'rm -rf "$OBS_DIR"' EXIT
  cargo run --release --offline -q -- train \
    --out "$OBS_DIR/models" --benchmarks 2 --configs 8 --t 6 \
    --obs json 2>"$OBS_DIR/train.log" >"$OBS_DIR/spans.jsonl"
  [ -s "$OBS_DIR/spans.jsonl" ] || { echo "train --obs json emitted no spans"; exit 1; }
  cargo run --release --offline -q -- obs report "$OBS_DIR/spans.jsonl"

  # Stage profiler smoke: the per-stage host-time attribution must work
  # on both the scalar and lockstep stepping paths and emit its
  # machine-readable line. (Output goes to a file first — the CLI
  # binaries die on SIGPIPE, so never pipe their stdout into grep -q.)
  echo "== obs smoke: simulate --profile-stages (scalar + lockstep) =="
  ARCHDSE_BATCH=1 cargo run --release --offline -q -- simulate gzip --profile-stages \
    >"$OBS_DIR/stages-scalar.txt"
  grep -q "mode *: *scalar" "$OBS_DIR/stages-scalar.txt" \
    || { echo "scalar stage profile missing"; cat "$OBS_DIR/stages-scalar.txt"; exit 1; }
  grep -q "stageprof-json:" "$OBS_DIR/stages-scalar.txt" \
    || { echo "stage profile missing machine-readable line"; exit 1; }
  grep -q '"issue"' "$OBS_DIR/stages-scalar.txt" \
    || { echo "stage profile missing issue bucket"; exit 1; }
  ARCHDSE_BATCH=4 cargo run --release --offline -q -- simulate gzip --profile-stages \
    >"$OBS_DIR/stages-batch.txt"
  grep -q "mode *: *lockstep" "$OBS_DIR/stages-batch.txt" \
    || { echo "batched stage profile did not run lockstep"; cat "$OBS_DIR/stages-batch.txt"; exit 1; }

  # Flight-recorder smoke: serve the obs-gate's tiny models, make one
  # predict, and follow its request id from the response header into the
  # recorder's event chain via GET /v1/obs/flight.
  echo "== obs smoke: serve -> predict request id -> flight recorder =="
  cargo run --release --offline -q -- serve \
    --models "$OBS_DIR/models" --addr 127.0.0.1:0 >"$OBS_DIR/serve.log" 2>&1 &
  OBS_SERVE_PID=$!
  trap 'rm -rf "$OBS_DIR"; kill "$OBS_SERVE_PID" 2>/dev/null || true' EXIT
  ADDR=""
  for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$OBS_DIR/serve.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$OBS_SERVE_PID" 2>/dev/null || { cat "$OBS_DIR/serve.log"; exit 1; }
    sleep 0.2
  done
  [ -n "$ADDR" ] || { echo "server never reported its address"; cat "$OBS_DIR/serve.log"; exit 1; }
  cargo run --release --offline -q -- client "$ADDR" fit gzip cycles r=8
  cargo run --release --offline -q -- client "$ADDR" predict gzip cycles \
    >"$OBS_DIR/predict.json"
  REQ_ID="$(sed -n 's/.*"request_id":\([0-9]*\).*/\1/p' "$OBS_DIR/predict.json" | head -1)"
  [ -n "$REQ_ID" ] && [ "$REQ_ID" -gt 0 ] \
    || { echo "predict response carried no request id"; cat "$OBS_DIR/predict.json"; exit 1; }
  cargo run --release --offline -q -- client "$ADDR" flight "$REQ_ID" \
    >"$OBS_DIR/flight.jsonl"
  for kind in reactor.dispatch worker.start registry.predict worker.done; do
    grep -q "\"kind\":\"$kind\"" "$OBS_DIR/flight.jsonl" \
      || { echo "flight dump for request $REQ_ID missing $kind"; cat "$OBS_DIR/flight.jsonl"; exit 1; }
  done
  cargo run --release --offline -q -- client "$ADDR" shutdown
  wait "$OBS_SERVE_PID"
  OBS_SERVE_PID=""

  rm -rf "$OBS_DIR"
  trap - EXIT
  echo "== obs smoke passed =="
fi

# Perf gate: quick bench run compared against the committed baseline
# (BENCH_sim.json); a >25% regression of any row's min iteration fails the build.
# The sweep-w4/w8 rows run the lockstep SweepEngine, so this is also the
# quick batched smoke. Constrained or noisy runners can skip it with
# DSE_BENCH_SKIP=1.
if [ "${DSE_BENCH_SKIP:-0}" = "1" ]; then
  echo "== bench gate skipped (DSE_BENCH_SKIP=1) =="
else
  echo "== DSE_QUICK=1 bench_sim vs BENCH_sim.json (>25% min-iteration regression fails) =="
  DSE_QUICK=1 DSE_BENCH_BASELINE=BENCH_sim.json \
    cargo run --release --offline -q -p dse-bench --bin bench_sim
fi

# Load gate: quick bench_load run (in-process server on an ephemeral
# port, short closed-loop/open-loop/batched rounds) compared against the
# committed BENCH_serve.json; a >50% regression of any row's min iteration fails
# the build. Skip on constrained or noisy runners with DSE_LOAD_SKIP=1.
if [ "${DSE_LOAD_SKIP:-0}" = "1" ]; then
  echo "== load gate skipped (DSE_LOAD_SKIP=1) =="
else
  echo "== DSE_QUICK=1 bench_load vs BENCH_serve.json (>50% min-iteration regression fails) =="
  DSE_QUICK=1 DSE_BENCH_BASELINE=BENCH_serve.json \
    cargo run --release --offline -q -p dse-bench --bin bench_load
fi

# Serve smoke: train tiny artifacts, start the HTTP server on an
# ephemeral port, drive /healthz, /v1/fit and /v1/predict through the
# in-repo client, then shut it down cleanly. Skip with DSE_SERVE_SKIP=1.
if [ "${DSE_SERVE_SKIP:-0}" = "1" ]; then
  echo "== serve smoke skipped (DSE_SERVE_SKIP=1) =="
else
  echo "== serve smoke: train -> serve -> client fit/predict -> shutdown =="
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
  # ARCHDSE_BATCH=8 makes this train run double as the end-to-end
  # batched dataset-generation smoke (sweeps schedule through the
  # lockstep engine; results are width-independent by construction).
  ARCHDSE_BATCH=8 cargo run --release --offline -q -- train \
    --out "$SMOKE_DIR/models" --benchmarks 3 --configs 40 --t 30
  cargo run --release --offline -q -- serve \
    --models "$SMOKE_DIR/models" --addr 127.0.0.1:0 >"$SMOKE_DIR/serve.log" 2>&1 &
  SERVE_PID=$!
  ADDR=""
  for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$SMOKE_DIR/serve.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SMOKE_DIR/serve.log"; exit 1; }
    sleep 0.2
  done
  [ -n "$ADDR" ] || { echo "server never reported its address"; cat "$SMOKE_DIR/serve.log"; exit 1; }
  cargo run --release --offline -q -- client "$ADDR" health
  cargo run --release --offline -q -- client "$ADDR" fit gzip cycles r=32
  cargo run --release --offline -q -- client "$ADDR" predict gzip cycles
  cargo run --release --offline -q -- client "$ADDR" shutdown
  wait "$SERVE_PID"
  SERVE_PID=""
  echo "== serve smoke passed =="
fi

# Explore smoke: train two-metric artifacts, run a tiny-budget frontier
# search through the CLI, and validate the written frontier JSON. Skip
# with DSE_EXPLORE_SKIP=1.
if [ "${DSE_EXPLORE_SKIP:-0}" = "1" ]; then
  echo "== explore smoke skipped (DSE_EXPLORE_SKIP=1) =="
else
  echo "== explore smoke: train -> explore -> validate frontier JSON =="
  EXPLORE_DIR="$(mktemp -d)"
  trap 'rm -rf "$EXPLORE_DIR"' EXIT
  cargo run --release --offline -q -- train \
    --out "$EXPLORE_DIR/models" --benchmarks 3 --configs 40 --t 30 \
    --metrics cycles,energy
  cargo run --release --offline -q -- explore gzip \
    --models "$EXPLORE_DIR/models" --objective cycles,energy \
    --rounds 2 --candidates 24 --sims 3 --archive 8 --r 8 \
    --out "$EXPLORE_DIR/results"
  FRONTIER="$EXPLORE_DIR/results/frontier-gzip-cycles-energy.json"
  [ -s "$FRONTIER" ] || { echo "explore wrote no frontier"; exit 1; }
  grep -q '"version":1' "$FRONTIER" || { echo "bad frontier version"; exit 1; }
  grep -q '"points":\[{' "$FRONTIER" || { echo "frontier has no points"; exit 1; }
  grep -q '"sim_calls":' "$FRONTIER" || { echo "frontier lacks cost accounting"; exit 1; }
  rm -rf "$EXPLORE_DIR"
  trap - EXIT
  echo "== explore smoke passed =="
fi

# Ingest smoke: fuzz a workload, export→import it through the
# interchange format, import a raw trace, train artifacts that include
# the imported store, serve them, and fit/predict the external program
# over HTTP — the full front-door path on programs that exist in no
# built-in suite. A co-run simulate runs sanitized, twice with different
# thread/batch settings, and must be byte-identical. Skip with
# DSE_INGEST_SKIP=1.
if [ "${DSE_INGEST_SKIP:-0}" = "1" ]; then
  echo "== ingest smoke skipped (DSE_INGEST_SKIP=1) =="
else
  echo "== ingest smoke: synth -> import -> train -> serve -> predict =="
  INGEST_DIR="$(mktemp -d)"
  trap 'rm -rf "$INGEST_DIR"; [ -n "${INGEST_PID:-}" ] && kill "$INGEST_PID" 2>/dev/null || true' EXIT
  # Fuzzer smoke: a pinned seed emits interchange documents on stdout.
  cargo run --release --offline -q -- workload synth --seed 9 --count 2 \
    >"$INGEST_DIR/synth.ndjson"
  [ "$(wc -l <"$INGEST_DIR/synth.ndjson")" = "2" ] || { echo "synth emitted wrong count"; exit 1; }
  # Export → import: the first synthesized document goes through a file
  # into a fresh store, alongside a raw instruction trace.
  head -1 "$INGEST_DIR/synth.ndjson" >"$INGEST_DIR/ext.json"
  cargo run --release --offline -q -- workload import "$INGEST_DIR/ext.json" \
    --workloads "$INGEST_DIR/wl"
  printf '#archdse-trace v1 name=ci-trace seed=4\nL 400 1000\nA 404\nB 408 T\nL 400 1040\nA 404\nB 408 N\n' \
    >"$INGEST_DIR/ci.trace"
  cargo run --release --offline -q -- workload import "$INGEST_DIR/ci.trace" \
    --workloads "$INGEST_DIR/wl"
  cargo run --release --offline -q -- workload list --workloads "$INGEST_DIR/wl" \
    >"$INGEST_DIR/list.txt"
  grep -q "synth-9-0" "$INGEST_DIR/list.txt" \
    || { echo "imported workload missing from list"; exit 1; }
  # Train on 3 builtins + the imported store, serve, and fit/predict the
  # synthesized program end to end.
  cargo run --release --offline -q -- train \
    --out "$INGEST_DIR/models" --benchmarks 3 --configs 40 --t 30 \
    --workloads "$INGEST_DIR/wl"
  cargo run --release --offline -q -- serve \
    --models "$INGEST_DIR/models" --workloads "$INGEST_DIR/wl" \
    --addr 127.0.0.1:0 >"$INGEST_DIR/serve.log" 2>&1 &
  INGEST_PID=$!
  ADDR=""
  for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$INGEST_DIR/serve.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$INGEST_PID" 2>/dev/null || { cat "$INGEST_DIR/serve.log"; exit 1; }
    sleep 0.2
  done
  [ -n "$ADDR" ] || { echo "server never reported its address"; cat "$INGEST_DIR/serve.log"; exit 1; }
  cargo run --release --offline -q -- client "$ADDR" workloads \
    >"$INGEST_DIR/workloads.json"
  grep -q '"imported":2' "$INGEST_DIR/workloads.json" \
    || { echo "server does not list the imported store"; exit 1; }
  cargo run --release --offline -q -- client "$ADDR" fit synth-9-0 cycles r=16 \
    workloads="$INGEST_DIR/wl"
  cargo run --release --offline -q -- client "$ADDR" predict synth-9-0 cycles
  cargo run --release --offline -q -- client "$ADDR" shutdown
  wait "$INGEST_PID"
  INGEST_PID=""
  # Co-run smoke: sanitized, and byte-identical across thread/batch
  # settings (the co-run passes are scalar by construction).
  ARCHDSE_SANITIZE=1 cargo run --release --offline -q -- \
    simulate gzip --corun mcf --sanitize >"$INGEST_DIR/corun1.txt"
  ARCHDSE_SANITIZE=1 ARCHDSE_THREADS=3 ARCHDSE_BATCH=4 cargo run --release --offline -q -- \
    simulate gzip --corun mcf --sanitize >"$INGEST_DIR/corun2.txt"
  cmp "$INGEST_DIR/corun1.txt" "$INGEST_DIR/corun2.txt" \
    || { echo "co-run output depends on thread/batch settings"; exit 1; }
  rm -rf "$INGEST_DIR"
  trap - EXIT
  echo "== ingest smoke passed =="
fi

echo "tier-1 gate passed"
