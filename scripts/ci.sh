#!/usr/bin/env bash
# Tier-1 gate: the workspace must build and test OFFLINE with an empty
# registry cache (zero external dependencies), and stay rustfmt-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "tier-1 gate passed"
