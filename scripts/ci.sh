#!/usr/bin/env bash
# Tier-1 gate: the workspace must build and test OFFLINE with an empty
# registry cache (zero external dependencies), and stay rustfmt-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

# The default test pass already sanitizes (debug builds default the
# sanitizer on), but run once with the flag forced so the env-var path
# itself can't bit-rot.
echo "== ARCHDSE_SANITIZE=1 cargo test -q --offline =="
ARCHDSE_SANITIZE=1 cargo test -q --offline

# Smoke-run the bench harness (release, sanitizer off) so it keeps
# compiling and running; DSE_QUICK trims it to a few seconds.
echo "== DSE_QUICK=1 bench_sim smoke =="
DSE_QUICK=1 cargo run --release --offline -q -p dse-bench --bin bench_sim

echo "tier-1 gate passed"
