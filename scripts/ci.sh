#!/usr/bin/env bash
# Tier-1 gate: the workspace must build and test OFFLINE with an empty
# registry cache (zero external dependencies), and stay rustfmt-clean.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

# The default test pass already sanitizes (debug builds default the
# sanitizer on), but run once with the flag forced so the env-var path
# itself can't bit-rot.
echo "== ARCHDSE_SANITIZE=1 cargo test -q --offline =="
ARCHDSE_SANITIZE=1 cargo test -q --offline

# Perf gate: quick bench run compared against the committed baseline
# (BENCH_sim.json); a >25% median regression on any row fails the build.
# Constrained or noisy runners can skip it with DSE_BENCH_SKIP=1.
if [ "${DSE_BENCH_SKIP:-0}" = "1" ]; then
  echo "== bench gate skipped (DSE_BENCH_SKIP=1) =="
else
  echo "== DSE_QUICK=1 bench_sim vs BENCH_sim.json (>25% median regression fails) =="
  DSE_QUICK=1 DSE_BENCH_BASELINE=BENCH_sim.json \
    cargo run --release --offline -q -p dse-bench --bin bench_sim
fi

echo "tier-1 gate passed"
