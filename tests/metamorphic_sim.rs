//! Metamorphic tests: relations between *pairs* of simulator runs that
//! must hold regardless of the absolute numbers.
//!
//! Each test perturbs one input along an axis with a known directional
//! effect and checks the outputs move the right way (or stay put):
//!
//! * longer trace, same program → phase-normalised metrics stable;
//! * larger L2, everything else fixed → never more L2 misses;
//! * wider machine, dependency-free work → never more cycles;
//! * doubled leakage → strictly more energy.

use archdse::prelude::*;
use dse_sim::{simulate, Pipeline, SimOptions};
use dse_space::ConstantParams;
use dse_workload::{Instr, InstrKind, Trace};

/// Phase-normalised metrics are length-invariant: doubling the measured
/// trace of the same statistical program leaves cycles/energy per
/// 10 M-instruction phase within a modest tolerance (the generator is a
/// stationary process, so longer samples only tighten the estimate).
#[test]
fn trace_length_scaling_preserves_normalised_metrics() {
    let profile = archdse::workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    let generate = |len: usize| TraceGenerator::new(&profile).generate(len);
    let options = SimOptions::with_warmup(5_000);
    let short = simulate(&Config::baseline(), &generate(20_000), options);
    let long = simulate(&Config::baseline(), &generate(40_000), options);

    let rel = |a: f64, b: f64| (a - b).abs() / b.abs();
    assert!(
        rel(short.cycles, long.cycles) < 0.15,
        "normalised cycles drifted with trace length: {} vs {}",
        short.cycles,
        long.cycles
    );
    assert!(
        rel(short.energy, long.energy) < 0.15,
        "normalised energy drifted with trace length: {} vs {}",
        short.energy,
        long.energy
    );
}

/// Enlarging only the L2 (same line size, same associativity policy, same
/// L1s, same access stream) can only retain or evict-later lines: the
/// number of L2 misses — equivalently main-memory accesses, which the
/// sanitizer pins to L2 misses — must never increase.
#[test]
fn enlarging_l2_never_increases_l2_misses() {
    let cons = ConstantParams::standard();
    let profile = archdse::workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == "gcc")
        .unwrap();
    let trace = TraceGenerator::new(&profile).generate(30_000);
    let options = SimOptions {
        warmup: 0,
        sanitize: true,
    };

    let mut last_misses = u64::MAX;
    for l2_kb in [512, 1024, 2048, 4096] {
        let cfg = Config {
            l2_kb,
            ..Config::baseline()
        };
        assert!(cfg.is_legal());
        let rec = Pipeline::new(&cfg, &cons, &trace, options)
            .try_run_full()
            .unwrap();
        let misses = rec.counters.memory_accesses;
        assert!(
            misses <= last_misses,
            "L2 {l2_kb} KB has {misses} misses, smaller L2 had {last_misses}"
        );
        last_misses = misses;
    }
}

/// On a dependency-free all-ALU trace the only limit is machine
/// bandwidth, so widening the machine (with ports scaled to match) must
/// never cost cycles.
#[test]
fn widening_machine_never_increases_cycles_on_free_trace() {
    let cons = ConstantParams::standard();
    let instrs: Vec<Instr> = (0..4_000u32)
        .map(|i| Instr {
            kind: InstrKind::IntAlu,
            src1: 0,
            src2: 0,
            pc: 0x40_0000 + (i % 64) * 4,
            addr: 0,
            taken: false,
            target: 0,
        })
        .collect();
    let trace = Trace::new("free", instrs);
    let options = SimOptions {
        warmup: 0,
        sanitize: true,
    };

    let mut last_cycles = u64::MAX;
    for width in [2u32, 4, 8] {
        let cfg = Config {
            width,
            rf_read: 2 * width,
            rf_write: width,
            ..Config::baseline()
        };
        assert!(cfg.is_legal());
        let rec = Pipeline::new(&cfg, &cons, &trace, options)
            .try_run_full()
            .unwrap();
        assert!(
            rec.result.cycles <= last_cycles,
            "width {width} takes {} cycles, narrower machine took {last_cycles}",
            rec.result.cycles
        );
        last_cycles = rec.result.cycles;
    }
}

/// Energy is affine in the leakage coefficient with slope `cycles > 0`:
/// doubling per-cycle leakage and repricing the same event counters must
/// strictly increase total energy, by exactly `cycles × leakage`.
#[test]
fn doubling_leakage_strictly_increases_energy() {
    let cons = ConstantParams::standard();
    let profile = archdse::workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == "sha")
        .unwrap();
    let trace = TraceGenerator::new(&profile).generate(20_000);
    let rec = Pipeline::new(
        &Config::baseline(),
        &cons,
        &trace,
        SimOptions {
            warmup: 0,
            sanitize: true,
        },
    )
    .try_run_full()
    .unwrap();

    let base = rec.counters.total_nj(&rec.model);
    let mut leaky = rec.model.clone();
    leaky.leakage_per_cycle *= 2.0;
    let doubled = rec.counters.total_nj(&leaky);
    assert!(
        doubled > base,
        "doubled leakage did not increase energy: {doubled} vs {base}"
    );
    let expect = base + rec.counters.cycles as f64 * rec.model.leakage_per_cycle;
    assert!(
        (doubled - expect).abs() <= 1e-9 * expect,
        "leakage must enter energy affinely: {doubled} vs {expect}"
    );
}
