//! Frontier determinism: for a fixed seed the serialized `Frontier` is
//! byte-identical across `ARCHDSE_THREADS` ∈ {1, 4, unset} ×
//! `ARCHDSE_BATCH` ∈ {1, 8}, and a tiny-budget run is pinned against
//! golden values so silent drift in the acquisition loop fails loudly.
//!
//! Env-var mutation is process-global, so both tests serialise on one
//! mutex and restore the variables before returning.

use archdse::explore::{
    Constraints, ExploreBudget, Explorer, MetricPredictor, Objective, SimOracle,
};
use archdse::prelude::*;
use dse_sim::batch::BATCH_ENV;
use dse_util::json::{FromJson, ToJson};
use dse_util::par::THREADS_ENV;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(threads: Option<&str>, batch: Option<&str>, body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    match threads {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    match batch {
        Some(v) => std::env::set_var(BATCH_ENV, v),
        None => std::env::remove_var(BATCH_ENV),
    }
    let r = body();
    std::env::remove_var(THREADS_ENV);
    std::env::remove_var(BATCH_ENV);
    r
}

/// A deterministic cheap oracle: weighted feature sums with a different
/// slope per metric. Accuracy is irrelevant here — only that acquisition
/// order and hence the simulated picks are reproducible.
struct SlopePredictor;

impl MetricPredictor for SlopePredictor {
    fn predict(&self, cfg: &Config, metric: Metric) -> f64 {
        let f = cfg.to_features();
        let core: f64 = f[..7].iter().sum();
        let mem: f64 = f[7..].iter().sum();
        match metric {
            Metric::Cycles => 1_000.0 * (8.0 - core),
            Metric::Energy => 100.0 * (1.0 + core + 2.0 * mem),
            Metric::Ed => 1_000.0 * (8.0 - core) * (1.0 + core + 2.0 * mem),
            Metric::Edd => 1_000.0 * (8.0 - core).powi(2) * (1.0 + core + 2.0 * mem),
        }
    }
}

fn run_explore() -> String {
    let profile = archdse::workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    let trace = TraceGenerator::new(&profile).generate(4_000);
    let oracle = SimOracle::new(trace, SimOptions::with_warmup(800));
    let explorer = Explorer {
        predictor: &SlopePredictor,
        oracle: &oracle,
        program: "gzip".to_string(),
        objective: Objective::parse("cycles,energy").unwrap(),
        constraints: Constraints::parse("width<=6").unwrap(),
        budget: ExploreBudget {
            rounds: 2,
            candidates_per_round: 24,
            sims_per_round: 3,
            archive_cap: 8,
            seed: 0xD15C,
        },
        pool: None,
    };
    let frontier = explorer.run().unwrap();
    dse_util::json::to_string(&frontier.to_json())
}

#[test]
fn frontier_json_is_bit_identical_across_threads_and_batch() {
    let baseline = with_env(Some("1"), Some("1"), run_explore);
    for threads in [Some("1"), Some("4"), None] {
        for batch in [Some("1"), Some("8")] {
            let json = with_env(threads, batch, run_explore);
            assert_eq!(
                json, baseline,
                "ARCHDSE_THREADS={threads:?} × ARCHDSE_BATCH={batch:?} \
                 drifted from the 1×1 frontier"
            );
        }
    }
}

/// Pins the tiny-budget frontier: exact point count, simulation spend,
/// and the bit pattern of every objective value. Captured from the run
/// this test was introduced with; any acquisition or simulator change
/// that moves these values must update the golden block *consciously*.
#[test]
fn tiny_budget_frontier_matches_golden() {
    let json = with_env(Some("1"), Some("1"), run_explore);
    let frontier =
        archdse::explore::Frontier::from_json(&dse_util::json::Json::parse(&json).unwrap())
            .unwrap();

    assert_eq!(frontier.sim_calls, 6, "2 rounds × 3 sims");
    assert!(frontier.predictor_calls > 0);
    assert!(!frontier.cancelled);
    assert_eq!(frontier.rounds.len(), 2);

    let got: Vec<(u64, u64)> = frontier
        .points
        .iter()
        .map(|p| (p.objectives[0].to_bits(), p.objectives[1].to_bits()))
        .collect();
    let expected: Vec<(u64, u64)> = GOLDEN
        .iter()
        .map(|&(c, e)| (c.to_bits(), e.to_bits()))
        .collect();
    assert_eq!(
        got,
        expected,
        "frontier points drifted; if intentional, re-capture GOLDEN \
         (values: {:?})",
        frontier
            .points
            .iter()
            .map(|p| (p.objectives[0], p.objectives[1]))
            .collect::<Vec<_>>()
    );
}

/// Golden (cycles, energy) frontier for the tiny budget above, in
/// canonical archive order.
const GOLDEN: &[(f64, f64)] = &[
    (84690625.0, 41086214.42310204),
    (99340625.0, 25674405.15274599),
];
