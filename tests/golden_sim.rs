//! Golden-snapshot test: pins exact `SimResult` values for eight seeded
//! configuration × profile pairs, captured from the simulator **before**
//! the allocation-free hot-loop rewrite (SoA traces, ring-buffer pipeline
//! state, wakeup wheel).
//!
//! Unlike the oracle envelope (tests/differential_oracle.rs), which bounds
//! behaviour, this test demands bit-exact equality on every field — any
//! layout-change-induced drift in scheduling, caching, prediction, or
//! energy accounting fails loudly.
//!
//! The pairs are reproducible: configs come from `sample_legal` under a
//! fixed seed, profiles are looked up by name, and the (profile, config)
//! grid is thinned to the checkerboard `(pi + ci) % 2 == 0`.

use dse_rng::Xoshiro256;
use dse_sim::{
    simulate_detailed, simulate_profiled, try_simulate_batch_records, SimOptions, SimResult,
};
use dse_space::{sample_legal, ConstantParams};
use dse_workload::{suites, TraceGenerator};

const TRACE_LEN: usize = 12_000;
const WARMUP: usize = 2_000;
const SEED: u64 = 0x601D;

/// (profile name, config index, expected result) — captured pre-rewrite.
#[rustfmt::skip]
fn golden() -> Vec<(&'static str, usize, SimResult)> {
    vec![
        ("gzip", 0, SimResult { instructions: 10000, cycles: 72617, energy_nj: 23497.998553681267, ipc: 0.13770880096946997, l1i_miss_rate: 0.04665314401622718, l1d_miss_rate: 0.25799256505576207, l2_miss_rate: 0.7900763358778626, bpred_miss_rate: 0.10873664362036455 }),
        ("gzip", 2, SimResult { instructions: 10000, cycles: 72431, energy_nj: 46980.44879138564, ipc: 0.13806243183167427, l1i_miss_rate: 0.04213197969543147, l1d_miss_rate: 0.2578966926793014, l2_miss_rate: 0.7992277992277992, bpred_miss_rate: 0.10817610062893082 }),
        ("gcc", 1, SimResult { instructions: 10000, cycles: 91650, energy_nj: 44845.81207365496, ipc: 0.10911074740861974, l1i_miss_rate: 0.11817078106029948, l1d_miss_rate: 0.18662232076866223, l2_miss_rate: 0.7641154328732748, bpred_miss_rate: 0.2620571916346564 }),
        ("gcc", 3, SimResult { instructions: 10000, cycles: 103417, energy_nj: 54376.94272396826, ipc: 0.09669590106075404, l1i_miss_rate: 0.11821862348178137, l1d_miss_rate: 0.18588322246858832, l2_miss_rate: 0.7660377358490567, bpred_miss_rate: 0.26228107646305 }),
        ("art", 0, SimResult { instructions: 10000, cycles: 147113, energy_nj: 75972.42306195703, ipc: 0.06797495802546343, l1i_miss_rate: 0.05692695214105793, l1d_miss_rate: 0.7361571829548355, l2_miss_rate: 0.9172781854569713, bpred_miss_rate: 0.12394366197183099 }),
        ("art", 2, SimResult { instructions: 10000, cycles: 147528, energy_nj: 122777.96481294662, ipc: 0.06778374274713952, l1i_miss_rate: 0.05695564516129032, l1d_miss_rate: 0.7361571829548355, l2_miss_rate: 0.9172781854569713, bpred_miss_rate: 0.1287593984962406 }),
        ("sha", 1, SimResult { instructions: 10000, cycles: 38751, energy_nj: 19536.58667601273, ipc: 0.2580578565714433, l1i_miss_rate: 0.0752441125789776, l1d_miss_rate: 0.09152542372881356, l2_miss_rate: 0.63125, bpred_miss_rate: 0.17914438502673796 }),
        ("sha", 3, SimResult { instructions: 10000, cycles: 41416, energy_nj: 23006.67806380891, ipc: 0.24145257871354067, l1i_miss_rate: 0.07515777395295467, l1d_miss_rate: 0.09152542372881356, l2_miss_rate: 0.63125, bpred_miss_rate: 0.17914438502673796 }),
    ]
}

#[test]
fn sim_results_match_pre_optimization_golden_values() {
    let mut rng = Xoshiro256::seed_from(SEED);
    let configs = sample_legal(&mut rng, 4);
    let opts = SimOptions::with_warmup(WARMUP);

    for (name, ci, expected) in golden() {
        let profile = suites::all_benchmarks()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("profile {name} missing"));
        let trace = TraceGenerator::new(&profile).generate(TRACE_LEN);
        let (got, _) = simulate_detailed(&configs[ci], &trace, opts);
        assert_eq!(
            got.instructions, expected.instructions,
            "{name} × config[{ci}]: instructions drifted"
        );
        assert_eq!(
            got.cycles, expected.cycles,
            "{name} × config[{ci}]: cycles drifted"
        );
        for (field, g, e) in [
            ("energy_nj", got.energy_nj, expected.energy_nj),
            ("ipc", got.ipc, expected.ipc),
            ("l1i_miss_rate", got.l1i_miss_rate, expected.l1i_miss_rate),
            ("l1d_miss_rate", got.l1d_miss_rate, expected.l1d_miss_rate),
            ("l2_miss_rate", got.l2_miss_rate, expected.l2_miss_rate),
            (
                "bpred_miss_rate",
                got.bpred_miss_rate,
                expected.bpred_miss_rate,
            ),
        ] {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "{name} × config[{ci}]: {field} drifted: got {g:?}, want {e:?}"
            );
        }
    }
}

/// The lockstep batched path (`ARCHDSE_BATCH>1` semantics) must produce
/// the same golden values: each profile's four sampled configs run as one
/// width-4 batch over a single shared trace, and every golden lane is
/// compared bit-for-bit against the pre-rewrite snapshot.
#[test]
fn batched_lanes_match_golden_values() {
    let mut rng = Xoshiro256::seed_from(SEED);
    let configs = sample_legal(&mut rng, 4);
    let opts = SimOptions::with_warmup(WARMUP);

    for name in ["gzip", "gcc", "art", "sha"] {
        let profile = suites::all_benchmarks()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("profile {name} missing"));
        let trace = TraceGenerator::new(&profile).generate(TRACE_LEN);
        let records =
            try_simulate_batch_records(&configs, &ConstantParams::standard(), &trace, opts);
        assert_eq!(records.len(), configs.len(), "{name}: lane count drifted");
        for (gname, ci, expected) in golden() {
            if gname != name {
                continue;
            }
            let got = records[ci]
                .as_ref()
                .unwrap_or_else(|e| panic!("{name} × config[{ci}]: batched lane failed: {e}"))
                .result;
            assert_eq!(
                got.instructions, expected.instructions,
                "{name} × config[{ci}]: instructions drifted under batching"
            );
            assert_eq!(
                got.cycles, expected.cycles,
                "{name} × config[{ci}]: cycles drifted under batching"
            );
            for (field, g, e) in [
                ("energy_nj", got.energy_nj, expected.energy_nj),
                ("ipc", got.ipc, expected.ipc),
                ("l1i_miss_rate", got.l1i_miss_rate, expected.l1i_miss_rate),
                ("l1d_miss_rate", got.l1d_miss_rate, expected.l1d_miss_rate),
                ("l2_miss_rate", got.l2_miss_rate, expected.l2_miss_rate),
                (
                    "bpred_miss_rate",
                    got.bpred_miss_rate,
                    expected.bpred_miss_rate,
                ),
            ] {
                assert_eq!(
                    g.to_bits(),
                    e.to_bits(),
                    "{name} × config[{ci}]: {field} drifted under batching: got {g:?}, want {e:?}"
                );
            }
        }
    }
}

/// The observed (stall-attributed) run must be bit-identical to the
/// golden values: instrumentation only reads pipeline state, never
/// steers it. Also checks the attribution's internal invariants — the
/// commit-outcome buckets partition the stepped cycles and, together
/// with the idle-skipped cycles, account for every cycle of the run.
#[test]
fn profiled_runs_are_bit_identical_and_attribution_sums() {
    let mut rng = Xoshiro256::seed_from(SEED);
    let configs = sample_legal(&mut rng, 4);
    let opts = SimOptions::with_warmup(WARMUP);

    for (name, ci, expected) in golden() {
        let profile = suites::all_benchmarks()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("profile {name} missing"));
        let trace = TraceGenerator::new(&profile).generate(TRACE_LEN);
        let (_, report) = simulate_profiled(&configs[ci], &trace, opts);
        let got = report.record.result;
        assert_eq!(
            got.instructions, expected.instructions,
            "{name} × config[{ci}]: instructions drifted under obs"
        );
        assert_eq!(
            got.cycles, expected.cycles,
            "{name} × config[{ci}]: cycles drifted under obs"
        );
        for (field, g, e) in [
            ("energy_nj", got.energy_nj, expected.energy_nj),
            ("ipc", got.ipc, expected.ipc),
            ("l1i_miss_rate", got.l1i_miss_rate, expected.l1i_miss_rate),
            ("l1d_miss_rate", got.l1d_miss_rate, expected.l1d_miss_rate),
            ("l2_miss_rate", got.l2_miss_rate, expected.l2_miss_rate),
            (
                "bpred_miss_rate",
                got.bpred_miss_rate,
                expected.bpred_miss_rate,
            ),
        ] {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "{name} × config[{ci}]: {field} drifted under obs: got {g:?}, want {e:?}"
            );
        }

        let p = &report.profile;
        assert_eq!(
            p.instructions, TRACE_LEN as u64,
            "{name} × config[{ci}]: attribution lost instructions"
        );
        assert_eq!(
            p.cycles_stepped,
            p.cycles_with_commit + p.commit_stall_rob_empty + p.commit_stall_head_wait,
            "{name} × config[{ci}]: commit buckets must partition stepped cycles"
        );
        assert!(
            p.total_cycles() >= got.cycles,
            "{name} × config[{ci}]: full-run cycles must cover the measured phase"
        );
        assert!(p.hw_rob > 0 && p.hw_fetch_q > 0);
    }
}
