//! Differential test: the out-of-order simulator against the in-order
//! reference oracle (`dse_sim::oracle`).
//!
//! Over a seeded sample of ≥ 200 (configuration × workload-profile)
//! pairs, every run must land inside the oracle's envelope:
//!
//! * cycles within `[cycles_lo, cycles_hi]` — at least the dataflow /
//!   bandwidth bound, at most the fully-serialised worst case;
//! * every scheduling-independent event count (fetch, rename, issue,
//!   commit, RF reads/writes, D-cache accesses, predictor lookups, FU
//!   histogram) **exactly** equal to the oracle's trace-derived count;
//! * total energy within `[energy_lo_nj, energy_hi_nj]`.
//!
//! Runs use **zero warm-up** so the measured portion is the whole trace —
//! count equalities are only exact without warm-up subtraction — and force
//! the sanitizer on, so each run also re-validates every internal
//! invariant (a second, independent layer of checking).

use archdse::prelude::*;
use dse_rng::Xoshiro256;
use dse_sim::{oracle, Pipeline, SimOptions};
use dse_space::ConstantParams;

const TRACE_LEN: usize = 5_000;
const CONFIGS: usize = 40;
const PROFILES: usize = 5;

fn sampled_configs(n: usize) -> Vec<Config> {
    let mut rng = Xoshiro256::seed_from(0xD1FF_07AC);
    dse_space::sample_legal(&mut rng, n)
}

fn profiles() -> Vec<Profile> {
    archdse::workload::suites::all_benchmarks()
        .into_iter()
        .step_by(4) // spread across the suites
        .take(PROFILES)
        .collect()
}

/// The shared envelope assertions: cycle bounds, exact scheduling-
/// independent event counts, energy bounds, and the counters repricing
/// to the reported energy.
fn check_against_oracle(tag: &str, report: &oracle::OracleReport, rec: &dse_sim::RunRecord) {
    // Cycle bounds.
    let cycles = rec.result.cycles;
    assert!(
        cycles >= report.cycles_lo,
        "{tag}: {cycles} cycles below oracle lower bound {}",
        report.cycles_lo
    );
    assert!(
        cycles <= report.cycles_hi,
        "{tag}: {cycles} cycles above oracle upper bound {}",
        report.cycles_hi
    );

    // Exact event-count equality.
    if let Some((name, obs, exp)) = report.count_mismatch(&rec.counters) {
        panic!("{tag}: event count `{name}` is {obs}, oracle expects {exp}");
    }

    // Energy bounds, and the counters must reprice to the result's
    // own energy (accounting reconciliation across layers).
    let e = rec.result.energy_nj;
    assert!(
        e >= report.energy_lo_nj && e <= report.energy_hi_nj,
        "{tag}: energy {e} nJ outside oracle bounds [{}, {}]",
        report.energy_lo_nj,
        report.energy_hi_nj
    );
    let repriced = rec.counters.total_nj(&rec.model);
    assert!(
        (repriced - e).abs() <= 1e-9 * e.max(1.0),
        "{tag}: counters reprice to {repriced} nJ but result reports {e} nJ"
    );
}

#[test]
fn simulator_stays_within_oracle_envelope_on_200_pairs() {
    let cons = ConstantParams::standard();
    let configs = sampled_configs(CONFIGS);
    let profiles = profiles();
    assert!(configs.len() * profiles.len() >= 200);

    let options = SimOptions {
        warmup: 0,
        sanitize: true,
    };
    let mut checked = 0usize;
    for profile in &profiles {
        let trace = TraceGenerator::new(profile).generate(TRACE_LEN);
        for cfg in &configs {
            let report = oracle::analyze(cfg, &cons, &trace);
            let rec = Pipeline::new(cfg, &cons, &trace, options)
                .try_run_full()
                .unwrap_or_else(|e| panic!("sanitizer violation on {} × {cfg}: {e}", profile.name));
            check_against_oracle(&format!("{} × {cfg}", profile.name), &report, &rec);
            checked += 1;
        }
    }
    assert!(checked >= 200, "only {checked} pairs checked");
}

/// The same 200 pairs through the lockstep batched engine: each profile's
/// forty configs run as one batch over a shared trace with the sanitizer
/// forced on per lane, and every lane must satisfy the identical oracle
/// envelope — bounds, exact counts, and energy reconciliation.
#[test]
fn batched_lanes_stay_within_oracle_envelope_on_200_pairs() {
    let cons = ConstantParams::standard();
    let configs = sampled_configs(CONFIGS);
    let profiles = profiles();
    assert!(configs.len() * profiles.len() >= 200);

    let options = SimOptions {
        warmup: 0,
        sanitize: true,
    };
    let mut checked = 0usize;
    for profile in &profiles {
        let trace = TraceGenerator::new(profile).generate(TRACE_LEN);
        let records = dse_sim::try_simulate_batch_records(&configs, &cons, &trace, options);
        assert_eq!(records.len(), configs.len());
        for (cfg, rec) in configs.iter().zip(&records) {
            let tag = format!("{} × {cfg} [batched]", profile.name);
            let rec = rec
                .as_ref()
                .unwrap_or_else(|e| panic!("sanitizer violation on {tag}: {e}"));
            let report = oracle::analyze(cfg, &cons, &trace);
            check_against_oracle(&tag, &report, rec);
            checked += 1;
        }
    }
    assert!(checked >= 200, "only {checked} pairs checked");
}

/// The envelope is not vacuous: on a serial dependency chain the lower
/// bound is tight (the simulator actually achieves it to within a small
/// margin covering pipeline fill/drain and one cold I-cache miss — the
/// whole chain lives in a single cache line).
#[test]
fn oracle_lower_bound_is_tight_on_serial_chain() {
    let cons = ConstantParams::standard();
    let instrs: Vec<dse_workload::Instr> = (0..2_000u32)
        .map(|i| dse_workload::Instr {
            kind: dse_workload::InstrKind::IntAlu,
            src1: if i == 0 { 0 } else { 1 },
            src2: 0,
            pc: 0x40_0000 + (i % 8) * 4,
            addr: 0,
            taken: false,
            target: 0,
        })
        .collect();
    let trace = dse_workload::Trace::new("serial", instrs);
    let cfg = Config::baseline();
    let report = oracle::analyze(&cfg, &cons, &trace);
    let r = Pipeline::new(
        &cfg,
        &cons,
        &trace,
        SimOptions {
            warmup: 0,
            sanitize: true,
        },
    )
    .try_run()
    .unwrap();
    assert!(r.cycles >= report.cycles_lo);
    assert!(
        r.cycles <= report.cycles_lo + 400,
        "lower bound should be near-tight on a serial chain: {} vs {}",
        r.cycles,
        report.cycles_lo
    );
}
