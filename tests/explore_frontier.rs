//! Frontier correctness: hand-computed Pareto/hypervolume cases, a seeded
//! property sweep over the archive invariant, and the headline acceptance
//! claim — on a small exhaustively-simulated grid the explorer recovers
//! ≥90% of the true Pareto set while spending ≤25% of the exhaustive
//! simulation budget (responses used to fit the predictor included).

use archdse::explore::{
    dominates, hypervolume, pareto_indices, Archive, ExploreBudget, Explorer, GroundTruth, Insert,
    MetricPredictor, Objective,
};
use archdse::explore::{Constraints, ExploreError};
use archdse::prelude::*;
use dse_core::arch_centric::ArchCentricPredictor;
use dse_core::dataset::{DatasetSpec, SuiteDataset};
use dse_rng::Xoshiro256;
use dse_space::{sample_legal, PARAM_COUNT};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Hand-computed dominance and hypervolume cases
// ---------------------------------------------------------------------------

#[test]
fn dominance_edge_cases() {
    // Strict dominance needs all-≤ and at least one <.
    assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
    assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
    assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
    // Ties: identical vectors dominate in neither direction.
    assert!(!dominates(&[3.0, 3.0], &[3.0, 3.0]));
    // Incomparable points dominate in neither direction.
    assert!(!dominates(&[1.0, 4.0], &[4.0, 1.0]));
    assert!(!dominates(&[4.0, 1.0], &[1.0, 4.0]));
}

#[test]
fn pareto_indices_hand_case_with_ties_and_duplicates() {
    let pts = vec![
        vec![1.0, 3.0], // front
        vec![2.0, 2.0], // front
        vec![2.0, 2.0], // duplicate of a front point: also nondominated
        vec![3.0, 1.0], // front
        vec![3.0, 3.0], // dominated by (2,2)
        vec![1.0, 3.0], // duplicate of a front point
    ];
    assert_eq!(pareto_indices(&pts), vec![0, 1, 2, 3, 5]);
}

#[test]
fn hypervolume_hand_case_2d() {
    // Boxes to ref (4,4): (1,3)→3·1, (2,2)→2·2, (3,1)→1·3; union by
    // inclusion–exclusion = 3+4+3 − 2 − 1 − 2 + 1 = 6.
    let pts = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
    assert_eq!(hypervolume(&pts, &[4.0, 4.0]), 6.0);
}

#[test]
fn hypervolume_hand_case_3d() {
    // vol(A=(1,1,2)) = 2·2·1 = 4, vol(B=(2,2,1)) = 1·1·2 = 2, their
    // intersection is the box (2,2,2)..(3,3,3) = 1. Union = 4+2−1 = 5.
    let pts = vec![vec![1.0, 1.0, 2.0], vec![2.0, 2.0, 1.0]];
    assert_eq!(hypervolume(&pts, &[3.0, 3.0, 3.0]), 5.0);
    // A duplicated point adds nothing.
    let with_dup = vec![
        vec![1.0, 1.0, 2.0],
        vec![2.0, 2.0, 1.0],
        vec![1.0, 1.0, 2.0],
    ];
    assert_eq!(hypervolume(&with_dup, &[3.0, 3.0, 3.0]), 5.0);
    // Points at or beyond the reference contribute nothing.
    assert_eq!(hypervolume(&[vec![3.0, 1.0, 1.0]], &[3.0, 3.0, 3.0]), 0.0);
}

#[test]
fn degenerate_single_point_frontier() {
    // One point dominating every other: the archive collapses to it.
    let cfgs = distinct_configs(4);
    let mut archive = Archive::new(2, 8);
    assert_eq!(archive.insert(cfgs[0], vec![5.0, 5.0], 0), Insert::Added);
    assert_eq!(
        archive.insert(cfgs[1], vec![6.0, 5.0], 0),
        Insert::Dominated
    );
    assert_eq!(archive.insert(cfgs[2], vec![1.0, 1.0], 1), Insert::Added);
    assert_eq!(archive.len(), 1, "dominating point evicts the rest");
    assert_eq!(archive.entries()[0].objectives, vec![1.0, 1.0]);
    // Same config again: duplicate, regardless of objectives.
    assert_eq!(
        archive.insert(cfgs[2], vec![0.5, 0.5], 2),
        Insert::Duplicate
    );
    // A tie on every axis is *not* dominated: it coexists.
    assert_eq!(archive.insert(cfgs[3], vec![1.0, 1.0], 2), Insert::Added);
    assert_eq!(archive.len(), 2);
}

fn distinct_configs(n: usize) -> Vec<Config> {
    sample_legal(&mut Xoshiro256::seed_from(0xC0FF), n)
}

// ---------------------------------------------------------------------------
// Property: the archive never holds a dominated member
// ---------------------------------------------------------------------------

/// 200 seeded random point sets, dimensions 2–4, values drawn coarsely so
/// ties and duplicates actually occur: after inserting everything, (a) no
/// archive member dominates another, (b) every rejected point really is
/// dominated by some member, (c) the cap holds.
#[test]
fn archive_members_never_dominate_each_other_over_200_seeds() {
    for seed in 0..200u64 {
        let mut rng = Xoshiro256::seed_from(0xA11CE + seed);
        let dim = 2 + (rng.next_u64() % 3) as usize;
        let n = 4 + (rng.next_u64() % 28) as usize;
        let cap = 1 + (rng.next_u64() % 12) as usize;
        let cfgs = sample_legal(&mut rng, n);
        let mut archive = Archive::new(dim, cap);
        for (i, cfg) in cfgs.iter().enumerate() {
            // Coarse grid in [0, 7] forces ties on single axes.
            let objectives: Vec<f64> = (0..dim).map(|_| (rng.next_u64() % 8) as f64).collect();
            let outcome = archive.insert(*cfg, objectives.clone(), i);
            if outcome == Insert::Dominated {
                assert!(
                    archive.dominating(&objectives) > 0,
                    "seed {seed}: rejected point must actually be dominated"
                );
            }
        }
        assert!(archive.len() <= cap, "seed {seed}: cap violated");
        assert!(!archive.is_empty(), "seed {seed}: archive empty");
        let entries = archive.entries();
        for a in entries {
            for b in entries {
                assert!(
                    !dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives,
                    "seed {seed}: archive member {:?} dominates member {:?}",
                    a.objectives,
                    b.objectives
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptance: ≥90% of the true front at ≤25% of the exhaustive budget
// ---------------------------------------------------------------------------

/// Cheap oracle for the acceptance run: the paper's predictor (offline
/// ensemble + online-fitted combiner), one per objective metric.
struct FittedPredictor {
    models: Vec<(Metric, ArchCentricPredictor)>,
}

impl MetricPredictor for FittedPredictor {
    fn predict(&self, cfg: &Config, metric: Metric) -> f64 {
        match self.models.iter().find(|(m, _)| *m == metric) {
            Some((_, p)) => p.predict(&cfg.to_features()),
            None => f64::NAN,
        }
    }
}

/// Expensive oracle backed by the exhaustively simulated grid: each
/// lookup stands for one simulation, so `Frontier::sim_calls` counts the
/// budget the explorer *would* have spent.
struct TableOracle {
    table: HashMap<[usize; PARAM_COUNT], Metrics>,
}

impl GroundTruth for TableOracle {
    fn simulate(&self, cfgs: &[Config]) -> Result<Vec<Metrics>, ExploreError> {
        Ok(cfgs.iter().map(|c| self.table[&c.to_indices()]).collect())
    }
}

#[test]
fn explorer_recovers_the_true_front_at_a_quarter_of_the_budget() {
    // Exhaustive ground truth: 256 configurations × 4 programs (3 train
    // the offline ensemble, 'mcf' is the exploration target).
    let mut profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .filter(|p| p.name != "mcf")
        .take(3)
        .collect();
    profiles.push(
        archdse::workload::suites::spec2000()
            .into_iter()
            .find(|p| p.name == "mcf")
            .unwrap(),
    );
    let spec = DatasetSpec {
        n_configs: 256,
        trace_len: 6_000,
        warmup: 1_000,
        seed: 0xBEEF,
    };
    let ds = SuiteDataset::generate(&profiles, &spec);
    let target = ds.benchmarks.len() - 1;
    let train_rows: Vec<usize> = (0..target).collect();

    let objective = Objective::parse("cycles,energy").unwrap();
    let metrics = objective.metrics();

    // Fit the cheap oracle from R responses of the target — these count
    // against the exploration budget below.
    const R: usize = 16;
    let idxs: Vec<usize> = (0..R).collect();
    let mut models = Vec::new();
    for &metric in &metrics {
        let offline = OfflineModel::train(&ds, &train_rows, metric, 96, &MlpConfig::default(), 7);
        let vals: Vec<f64> = idxs
            .iter()
            .map(|&i| ds.benchmarks[target].metrics[i].get(metric))
            .collect();
        models.push((metric, offline.fit_responses(&ds, &idxs, &vals)));
    }
    let predictor = FittedPredictor { models };

    let truth: Vec<Metrics> = ds.benchmarks[target].metrics.clone();
    let oracle = TableOracle {
        table: ds
            .configs
            .iter()
            .zip(&truth)
            .map(|(c, m)| (c.to_indices(), *m))
            .collect(),
    };

    // The true Pareto front of the exhaustive grid.
    let points: Vec<Vec<f64>> = truth.iter().map(|m| objective.eval(m)).collect();
    let true_front: Vec<[usize; PARAM_COUNT]> = pareto_indices(&points)
        .into_iter()
        .map(|i| ds.configs[i].to_indices())
        .collect();
    assert!(
        true_front.len() >= 4,
        "grid degenerate: true front has only {} points",
        true_front.len()
    );

    let budget = ExploreBudget {
        rounds: 6,
        candidates_per_round: 256,
        sims_per_round: 8,
        archive_cap: 64,
        seed: 0xE8,
    };
    let explorer = Explorer {
        predictor: &predictor,
        oracle: &oracle,
        program: profiles[target].name.to_string(),
        objective,
        constraints: Constraints::none(),
        budget,
        pool: Some(ds.configs.clone()),
    };
    let frontier = explorer.run().unwrap();

    // Budget honesty: simulations spent (explorer picks + fit responses)
    // must stay within a quarter of the exhaustive sweep.
    let exhaustive = ds.configs.len() as u64;
    let spent = frontier.sim_calls + R as u64;
    assert!(
        spent * 4 <= exhaustive,
        "spent {spent} sims vs exhaustive {exhaustive}"
    );

    // Recovery: ≥90% of the true front members were found.
    let found: Vec<[usize; PARAM_COUNT]> = frontier
        .points
        .iter()
        .map(|p| p.config.to_indices())
        .collect();
    let hits = true_front.iter().filter(|t| found.contains(t)).count();
    // Visible with --nocapture; the numbers quoted in EXPERIMENTS.md.
    println!(
        "recovered {hits}/{} true-front points with {spent}/{exhaustive} sims \
         ({} explorer picks + {R} fit responses)",
        true_front.len(),
        frontier.sim_calls
    );
    assert!(
        hits * 10 >= true_front.len() * 9,
        "recovered {hits}/{} true-front points with {spent}/{exhaustive} sims",
        true_front.len()
    );

    // Every frontier point carries the exact ground-truth objectives.
    for p in &frontier.points {
        let m = oracle.table[&p.config.to_indices()];
        assert_eq!(p.objectives, frontier.objective.eval(&m));
    }
}
