//! Workspace-level observability tests.
//!
//! Pins the two properties the tracing layer promises its consumers:
//!
//! 1. The span *tree* (names and parent/child edges) produced by a
//!    `par_map` workload is deterministic across thread counts — only
//!    the timings may differ between `ARCHDSE_THREADS=1` and `=4`.
//! 2. The sharded quantile ring reports exact nearest-rank percentiles,
//!    matching an independently sorted copy of the samples.
//!
//! (Bit-identity of the simulator with observation on vs. off is pinned
//! separately in `tests/golden_sim.rs`.)

use std::collections::BTreeMap;
use std::sync::Mutex;

use dse_obs::registry::{QuantileRing, SHARDS};
use dse_obs::span::{self, SpanRecord};
use dse_util::par::{par_map, THREADS_ENV};

/// The span log, the obs enable flag, and `ARCHDSE_THREADS` are all
/// process-global; every test in this binary serialises on this lock.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `body` with obs enabled and `ARCHDSE_THREADS` set, returning the
/// spans it produced; restores the previous state afterwards.
fn spans_with_threads(threads: &str, body: impl FnOnce()) -> Vec<SpanRecord> {
    std::env::set_var(THREADS_ENV, threads);
    dse_obs::set_enabled(true);
    let _ = span::take_spans(); // drop leftovers from other tests
    body();
    let spans = span::take_spans();
    dse_obs::set_enabled(false);
    std::env::remove_var(THREADS_ENV);
    spans
}

/// A thread-count-independent shape signature: sorted multiset of
/// `(name, parent-name, fields)` triples.
fn tree_shape(spans: &[SpanRecord]) -> Vec<(String, String, String)> {
    let names: BTreeMap<u64, &str> = spans.iter().map(|s| (s.id, s.name)).collect();
    let mut shape: Vec<(String, String, String)> = spans
        .iter()
        .map(|s| {
            let parent = s
                .parent
                .and_then(|p| names.get(&p).copied())
                .unwrap_or("<root>");
            (s.name.to_string(), parent.to_string(), s.fields.clone())
        })
        .collect();
    shape.sort();
    shape
}

/// The workload under test: a root span fanning out to one `work` span
/// per item through the scoped-thread pool.
fn spanned_workload() {
    let _root = dse_obs::span!("root", items = 24);
    let items: Vec<u64> = (0..24).collect();
    let out = par_map(&items, |&i| {
        let _s = dse_obs::span!("work", i = i);
        i * 2
    });
    assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
}

#[test]
fn span_tree_is_deterministic_across_thread_counts() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = spans_with_threads("1", spanned_workload);
    let parallel = spans_with_threads("4", spanned_workload);

    assert_eq!(serial.len(), 25, "one root + 24 work spans");
    assert_eq!(tree_shape(&serial), tree_shape(&parallel));

    // Every worker-thread span must have been re-parented onto the root
    // span that was current when `par_map` spawned the pool.
    for spans in [&serial, &parallel] {
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root.parent, None);
        for s in spans.iter().filter(|s| s.name == "work") {
            assert_eq!(s.parent, Some(root.id), "work span not under root");
        }
    }
}

#[test]
fn spans_nest_and_time_monotonically() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spans = spans_with_threads("2", spanned_workload);
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for s in &spans {
        if let Some(p) = s.parent.and_then(|p| by_id.get(&p)) {
            assert!(s.start_ns >= p.start_ns, "child starts before parent");
            assert!(
                s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns,
                "child {} outlives parent {}",
                s.name,
                p.name
            );
        }
    }
}

#[test]
fn quantile_ring_matches_exact_sorted_percentiles() {
    // One thread writes one shard, so size the ring to hold everything.
    let n = 500u64;
    let ring = QuantileRing::new(n as usize * SHARDS);
    // A scrambled but fully known sample set: 1..=500 each exactly once.
    let mut vals: Vec<u64> = (1..=n).collect();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..vals.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        vals.swap(i, (state >> 33) as usize % (i + 1));
    }
    for v in &vals {
        ring.record(*v);
    }
    let mut sorted = ring.samples();
    sorted.sort_unstable();
    assert_eq!(sorted, (1..=n).collect::<Vec<_>>());
    // Nearest-rank: value at index ceil(n*p) - 1 of the sorted samples.
    for (p, want) in [(0.5, 250), (0.95, 475), (0.99, 495), (1.0, 500)] {
        let rank = ((n as f64 * p).ceil() as usize).clamp(1, n as usize);
        assert_eq!(sorted[rank - 1], want);
        assert_eq!(ring.quantile(p), want, "quantile({p})");
    }
    let snap = ring.snapshot();
    assert_eq!(
        (snap.samples, snap.p50, snap.p95, snap.p99),
        (n as usize, 250, 475, 495)
    );
}
