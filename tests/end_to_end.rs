//! Cross-crate integration tests: the full pipeline from synthetic
//! workloads through the simulator to the predictors, at reduced scale.

use archdse::core::xval::{self, EvalConfig};
use archdse::prelude::*;
use dse_ml::stats::{correlation, rmae};

fn small_dataset() -> SuiteDataset {
    let mut profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .filter(|p| ["gzip", "parser", "crafty", "gap", "mesa", "sixtrack"].contains(&p.name))
        .collect();
    profiles.extend(
        archdse::workload::suites::mibench()
            .into_iter()
            .filter(|p| ["sha", "qsort"].contains(&p.name)),
    );
    SuiteDataset::generate(
        &profiles,
        &DatasetSpec {
            n_configs: 140,
            trace_len: 20_000,
            warmup: 4_000,
            seed: 77,
        },
    )
}

#[test]
fn architecture_centric_predicts_an_unseen_program() {
    let ds = small_dataset();
    let target = ds.benchmark_index("gap").unwrap();
    let train_rows: Vec<usize> = (0..ds.benchmarks.len())
        .filter(|&i| i != target && ds.benchmarks[i].suite == Suite::SpecCpu2000)
        .collect();
    let offline = OfflineModel::train(
        &ds,
        &train_rows,
        Metric::Cycles,
        100,
        &MlpConfig::default(),
        11,
    );
    let responses: Vec<usize> = (0..24).collect();
    let values: Vec<f64> = responses
        .iter()
        .map(|&i| ds.benchmarks[target].metrics[i].cycles)
        .collect();
    let predictor = offline.fit_responses(&ds, &responses, &values);

    let features = ds.features();
    let preds: Vec<f64> = (24..ds.n_configs())
        .map(|i| predictor.predict(&features[i]))
        .collect();
    let actual: Vec<f64> = (24..ds.n_configs())
        .map(|i| ds.benchmarks[target].metrics[i].cycles)
        .collect();
    let corr = correlation(&preds, &actual);
    let err = rmae(&preds, &actual);
    assert!(
        corr > 0.5,
        "cross-program prediction should track the space, corr {corr}"
    );
    assert!(err < 30.0, "rmae {err} too high");
}

#[test]
fn arch_centric_beats_program_specific_at_small_budgets() {
    // The paper's headline claim at reduced scale: with few simulations of
    // a new program, prior cross-program knowledge wins.
    let ds = small_dataset();
    let cfg = EvalConfig {
        t: 70,
        r: 12,
        repeats: 3,
        seed: 3,
        mlp: MlpConfig {
            epochs: 120,
            ..MlpConfig::default()
        },
    };
    let rows = xval::compare(&ds, Suite::SpecCpu2000, Metric::Cycles, &[12], &cfg);
    let row = &rows[0];
    assert!(
        row.ac_rmae.mean < row.ps_rmae.mean,
        "architecture-centric ({:.1}%) should beat program-specific ({:.1}%) at 12 sims",
        row.ac_rmae.mean,
        row.ps_rmae.mean
    );
    assert!(
        row.ac_corr.mean > row.ps_corr.mean,
        "architecture-centric corr ({:.3}) should beat program-specific ({:.3})",
        row.ac_corr.mean,
        row.ps_corr.mean
    );
}

#[test]
fn loo_and_cross_suite_run_end_to_end() {
    let ds = small_dataset();
    let cfg = EvalConfig {
        t: 60,
        r: 12,
        repeats: 2,
        seed: 5,
        mlp: MlpConfig {
            epochs: 80,
            ..MlpConfig::default()
        },
    };
    let evals = xval::loo(&ds, Suite::SpecCpu2000, Metric::Energy, &cfg);
    assert_eq!(evals.len(), 6);
    for e in &evals {
        assert!(e.test_rmae.mean.is_finite());
    }
    let cross = xval::cross_suite(
        &ds,
        Suite::SpecCpu2000,
        Suite::MiBench,
        Metric::Energy,
        &cfg,
    );
    assert_eq!(cross.len(), 2);
}
