//! Reproducibility guarantees across the whole stack.

use archdse::prelude::*;

#[test]
fn same_seed_same_everything() {
    let profiles: Vec<Profile> = archdse::workload::suites::mibench()
        .into_iter()
        .take(2)
        .collect();
    let spec = DatasetSpec {
        n_configs: 20,
        trace_len: 10_000,
        warmup: 2_000,
        seed: 123,
    };
    let a = SuiteDataset::generate(&profiles, &spec);
    let b = SuiteDataset::generate(&profiles, &spec);
    assert_eq!(a, b);

    let offline_a = OfflineModel::train(&a, &[0], Metric::Cycles, 10, &MlpConfig::default(), 9);
    let offline_b = OfflineModel::train(&b, &[0], Metric::Cycles, 10, &MlpConfig::default(), 9);
    let idxs: Vec<usize> = (0..6).collect();
    let vals: Vec<f64> = idxs
        .iter()
        .map(|&i| a.benchmarks[1].metrics[i].cycles)
        .collect();
    let pa = offline_a.fit_responses(&a, &idxs, &vals);
    let pb = offline_b.fit_responses(&b, &idxs, &vals);
    let f = a.features();
    for row in f.iter().take(10) {
        assert_eq!(pa.predict(row), pb.predict(row));
    }
}

#[test]
fn different_dataset_seed_changes_configs() {
    let profiles: Vec<Profile> = archdse::workload::suites::mibench()
        .into_iter()
        .take(1)
        .collect();
    let mk = |seed| {
        SuiteDataset::generate(
            &profiles,
            &DatasetSpec {
                n_configs: 10,
                trace_len: 8_000,
                warmup: 1_000,
                seed,
            },
        )
    };
    assert_ne!(mk(1).configs, mk(2).configs);
}
