//! Property-style integration tests: invariants that must hold for any
//! legal configuration and any suite workload.
//!
//! Formerly driven by `proptest`; now a fixed-seed in-repo case generator
//! (`dse-rng`) draws the same ~12-case budget per property, so the tests
//! are deterministic and dependency-free.

use archdse::prelude::*;
use dse_rng::Xoshiro256;

/// Deterministic case seeds: one generator per property, fixed root seed,
/// matching the former `ProptestConfig::with_cases(12)` budget.
fn case_seeds(property_tag: u64, cases: usize) -> Vec<u64> {
    let root = Xoshiro256::seed_from(0x1A4B_11C5 ^ property_tag);
    (0..cases)
        .map(|i| root.child(i as u64).next_u64())
        .collect()
}

fn sampled_config(seed: u64) -> Config {
    let mut rng = Xoshiro256::seed_from(seed);
    dse_space::sample_legal(&mut rng, 1)[0]
}

/// The pipeline cannot commit faster than its width allows, and every
/// metric must be positive and finite.
#[test]
fn prop_ipc_bounded_by_width_and_metrics_finite() {
    for seed in case_seeds(0xA11, 12) {
        let cfg = sampled_config(seed);
        let profile = Profile::template("prop", Suite::SpecCpu2000, seed ^ 0xABCD);
        let trace = TraceGenerator::new(&profile).generate(6_000);
        let (r, m) = archdse::sim::simulate_detailed(&cfg, &trace, SimOptions::with_warmup(1_000));
        assert!(r.ipc <= cfg.width as f64 + 1e-9, "seed {seed}: {cfg}");
        assert!(r.ipc > 0.0, "seed {seed}");
        assert!(m.cycles.is_finite() && m.cycles > 0.0, "seed {seed}");
        assert!(m.energy.is_finite() && m.energy > 0.0, "seed {seed}");
        assert!(m.ed.is_finite() && m.edd.is_finite(), "seed {seed}");
        for rate in [
            r.l1i_miss_rate,
            r.l1d_miss_rate,
            r.l2_miss_rate,
            r.bpred_miss_rate,
        ] {
            assert!((0.0..=1.0).contains(&rate), "seed {seed}: rate {rate}");
        }
    }
}

/// Simulating the same trace twice on the same configuration gives
/// bit-identical results for arbitrary legal configurations.
#[test]
fn prop_simulation_deterministic() {
    for seed in case_seeds(0xDE7, 12) {
        let cfg = sampled_config(seed);
        let profile = Profile::template("det", Suite::MiBench, seed);
        let trace = TraceGenerator::new(&profile).generate(4_000);
        let a = simulate(&cfg, &trace, SimOptions::with_warmup(500));
        let b = simulate(&cfg, &trace, SimOptions::with_warmup(500));
        assert_eq!(a, b, "seed {seed}: {cfg}");
    }
}
