//! Property-based integration tests: invariants that must hold for any
//! legal configuration and any suite workload.

use archdse::prelude::*;
use dse_rng::Xoshiro256;
use proptest::prelude::*;

fn sampled_config(seed: u64) -> Config {
    let mut rng = Xoshiro256::seed_from(seed);
    dse_space::sample_legal(&mut rng, 1)[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipeline cannot commit faster than its width allows, and every
    /// metric must be positive and finite.
    #[test]
    fn prop_ipc_bounded_by_width_and_metrics_finite(seed in 0u64..500) {
        let cfg = sampled_config(seed);
        let profile = Profile::template("prop", Suite::SpecCpu2000, seed ^ 0xABCD);
        let trace = TraceGenerator::new(&profile).generate(6_000);
        let (r, m) = archdse::sim::simulate_detailed(&cfg, &trace, SimOptions { warmup: 1_000 });
        prop_assert!(r.ipc <= cfg.width as f64 + 1e-9);
        prop_assert!(r.ipc > 0.0);
        prop_assert!(m.cycles.is_finite() && m.cycles > 0.0);
        prop_assert!(m.energy.is_finite() && m.energy > 0.0);
        prop_assert!(m.ed.is_finite() && m.edd.is_finite());
        for rate in [r.l1i_miss_rate, r.l1d_miss_rate, r.l2_miss_rate, r.bpred_miss_rate] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    /// Simulating the same trace twice on the same configuration gives
    /// bit-identical results for arbitrary legal configurations.
    #[test]
    fn prop_simulation_deterministic(seed in 0u64..200) {
        let cfg = sampled_config(seed);
        let profile = Profile::template("det", Suite::MiBench, seed);
        let trace = TraceGenerator::new(&profile).generate(4_000);
        let a = simulate(&cfg, &trace, SimOptions { warmup: 500 });
        let b = simulate(&cfg, &trace, SimOptions { warmup: 500 });
        prop_assert_eq!(a, b);
    }
}
