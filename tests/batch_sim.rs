//! Batched lockstep engine edge cases: ragged batch widths, singleton
//! batches, lanes retiring at very different times, profiled-vs-batched
//! identity, and the per-lane global observability counters.
//!
//! The envelope and golden suites already pin batched-vs-scalar identity
//! on sampled grids; this file targets the *scheduling* edges of
//! `try_simulate_batch_records` that those grids don't stress.

use dse_sim::{
    simulate_detailed, simulate_profiled, try_simulate_batch, try_simulate_batch_records,
    SimOptions, SimResult,
};
use dse_space::{sample_legal, Config, ConstantParams};
use dse_workload::{suites, Trace, TraceGenerator};
use std::sync::Mutex;

/// Serialises every test in this binary: the per-lane counter test reads
/// workspace-global counters, so no other test may simulate concurrently.
static LOCK: Mutex<()> = Mutex::new(());

fn trace_for(name: &str, len: usize) -> Trace {
    let profile = suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("profile {name} missing"));
    TraceGenerator::new(&profile).generate(len)
}

fn assert_results_equal(got: &SimResult, want: &SimResult, ctx: &str) {
    assert_eq!(got.instructions, want.instructions, "{ctx}: instructions");
    assert_eq!(got.cycles, want.cycles, "{ctx}: cycles");
    for (field, g, w) in [
        ("energy_nj", got.energy_nj, want.energy_nj),
        ("ipc", got.ipc, want.ipc),
        ("l1i_miss_rate", got.l1i_miss_rate, want.l1i_miss_rate),
        ("l1d_miss_rate", got.l1d_miss_rate, want.l1d_miss_rate),
        ("l2_miss_rate", got.l2_miss_rate, want.l2_miss_rate),
        ("bpred_miss_rate", got.bpred_miss_rate, want.bpred_miss_rate),
    ] {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: {field} drifted: got {g:?}, want {w:?}"
        );
    }
}

/// A tiny, slow, narrow machine: finishes the trace in far more cycles
/// than the baseline, so mixing it into a batch forces some lanes to
/// retire thousands of cycles before others.
fn tiny_config() -> Config {
    Config {
        width: 2,
        rob: 32,
        iq: 8,
        lsq: 8,
        rf: 40,
        rf_read: 2,
        rf_write: 1,
        bpred_k: 1,
        btb_k: 1,
        max_branches: 8,
        icache_kb: 8,
        dcache_kb: 8,
        l2_kb: 256,
    }
}

/// Ragged batch: seven configs (not divisible by any default width) in
/// one lockstep pass must match seven independent scalar runs lane for
/// lane, bit for bit, with the sanitizer live in every lane.
#[test]
fn ragged_batch_matches_scalar_lane_for_lane() {
    let _g = LOCK.lock().unwrap();
    let mut rng = dse_rng::Xoshiro256::seed_from(0xBA7C_0001);
    let configs = sample_legal(&mut rng, 7);
    let trace = trace_for("gzip", 8_000);
    let opts = SimOptions {
        warmup: 1_000,
        sanitize: true,
    };
    let records = try_simulate_batch_records(&configs, &ConstantParams::standard(), &trace, opts);
    assert_eq!(records.len(), configs.len());
    for (i, (cfg, rec)) in configs.iter().zip(&records).enumerate() {
        let rec = rec
            .as_ref()
            .unwrap_or_else(|e| panic!("lane {i} failed: {e}"));
        let (scalar, _) = simulate_detailed(cfg, &trace, opts);
        assert_results_equal(&rec.result, &scalar, &format!("lane {i}"));
    }
}

/// A single-config batch takes the scalar fast path and must be exactly
/// the scalar result; an empty batch is an empty result, not a panic.
#[test]
fn singleton_and_empty_batches() {
    let _g = LOCK.lock().unwrap();
    let trace = trace_for("sha", 6_000);
    let opts = SimOptions::with_warmup(1_000);
    let cfg = Config::baseline();
    let records = try_simulate_batch_records(
        std::slice::from_ref(&cfg),
        &ConstantParams::standard(),
        &trace,
        opts,
    );
    assert_eq!(records.len(), 1);
    let (scalar, _) = simulate_detailed(&cfg, &trace, opts);
    assert_results_equal(&records[0].as_ref().unwrap().result, &scalar, "singleton");

    let none = try_simulate_batch_records(&[], &ConstantParams::standard(), &trace, opts);
    assert!(none.is_empty(), "empty batch must yield no lanes");
}

/// Lanes retiring early must not disturb the survivors: a batch mixing
/// the tiny machine (slowest), the baseline, and duplicate lanes still
/// matches the scalar runs exactly, including the duplicated lanes
/// agreeing with each other.
#[test]
fn early_lane_retirement_leaves_survivors_exact() {
    let _g = LOCK.lock().unwrap();
    let trace = trace_for("art", 9_000);
    let opts = SimOptions {
        warmup: 1_500,
        sanitize: true,
    };
    let configs = [
        Config::baseline(),
        tiny_config(),
        Config::baseline(),
        tiny_config(),
    ];
    let records = try_simulate_batch_records(&configs, &ConstantParams::standard(), &trace, opts);
    for (i, (cfg, rec)) in configs.iter().zip(&records).enumerate() {
        let rec = rec
            .as_ref()
            .unwrap_or_else(|e| panic!("lane {i} failed: {e}"));
        let (scalar, _) = simulate_detailed(cfg, &trace, opts);
        assert_results_equal(&rec.result, &scalar, &format!("lane {i}"));
    }
    // Duplicate configs are independent lanes but must agree exactly.
    let r0 = &records[0].as_ref().unwrap().result;
    let r2 = &records[2].as_ref().unwrap().result;
    assert_results_equal(r0, r2, "duplicate baseline lanes");
    // The tiny machine really is slower — early retirement happened.
    let base_cycles = records[0].as_ref().unwrap().result.cycles;
    let tiny_cycles = records[1].as_ref().unwrap().result.cycles;
    assert!(
        tiny_cycles > base_cycles,
        "tiny config should outlive the baseline lane ({tiny_cycles} vs {base_cycles})"
    );
}

/// Satellite: the profiled (stall-attributed) path stays scalar and must
/// agree bit-for-bit with the same config's lane inside a batch.
#[test]
fn profiled_run_matches_batched_lane() {
    let _g = LOCK.lock().unwrap();
    let mut rng = dse_rng::Xoshiro256::seed_from(0xBA7C_0002);
    let configs = sample_legal(&mut rng, 3);
    let trace = trace_for("gcc", 8_000);
    let opts = SimOptions::with_warmup(1_000);
    let records = try_simulate_batch_records(&configs, &ConstantParams::standard(), &trace, opts);
    for (i, cfg) in configs.iter().enumerate() {
        let (_, report) = simulate_profiled(cfg, &trace, opts);
        assert_results_equal(
            &records[i].as_ref().unwrap().result,
            &report.record.result,
            &format!("profiled vs batched lane {i}"),
        );
    }
}

/// Satellite: the workspace-global sims/cycles/instructions counters
/// count per *lane*, not per batch pass — a width-5 batch bumps the run
/// counter by 5 and the cycle/instruction counters by the per-lane sums.
#[test]
fn obs_counters_count_per_lane() {
    let _g = LOCK.lock().unwrap();
    let mut rng = dse_rng::Xoshiro256::seed_from(0xBA7C_0003);
    let configs = sample_legal(&mut rng, 5);
    let trace = trace_for("gzip", 6_000);
    let opts = SimOptions::with_warmup(1_000);

    // Expected per-lane totals from the records path (which does not
    // touch the global counters).
    let records = try_simulate_batch_records(&configs, &ConstantParams::standard(), &trace, opts);
    let want_cycles: u64 = records
        .iter()
        .map(|r| r.as_ref().unwrap().result.cycles)
        .sum();
    let want_instrs: u64 = records
        .iter()
        .map(|r| r.as_ref().unwrap().result.instructions)
        .sum();

    let runs = dse_obs::counter("dse_sim_runs_total");
    let cycles = dse_obs::counter("dse_sim_cycles_total");
    let instrs = dse_obs::counter("dse_sim_instructions_total");
    let (r0, c0, i0) = (runs.get(), cycles.get(), instrs.get());
    let metrics = try_simulate_batch(&configs, &trace, opts);
    assert_eq!(metrics.len(), configs.len());
    assert!(metrics.iter().all(Result::is_ok));
    assert_eq!(
        runs.get() - r0,
        configs.len() as u64,
        "run counter must count lanes"
    );
    assert_eq!(
        cycles.get() - c0,
        want_cycles,
        "cycle counter must sum per-lane cycles"
    );
    assert_eq!(
        instrs.get() - i0,
        want_instrs,
        "instruction counter must sum per-lane instructions"
    );
}
