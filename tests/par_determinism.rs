//! Determinism of the owned parallel substrate: results are bit-identical
//! to the serial path and independent of `ARCHDSE_THREADS`.
//!
//! Env-var mutation is process-global, so every test here serialises on
//! one mutex, and each test restores the variable before returning.

use archdse::prelude::*;
use dse_core::dataset::DatasetSpec;
use dse_util::par::{par_map, THREADS_ENV};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(value: &str, body: impl FnOnce() -> R) -> R {
    with_threads_opt(Some(value), body)
}

/// Like [`with_threads`], but `None` runs with `ARCHDSE_THREADS` unset
/// (the default auto-detected thread count).
fn with_threads_opt<R>(value: Option<&str>, body: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    match value {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
    let r = body();
    std::env::remove_var(THREADS_ENV);
    r
}

/// The flattened sweep scheduler hands one benchmark × configuration work
/// list to `par_map`, which deals *contiguous chunks* through an atomic
/// cursor. Chunk boundaries move with the thread count, so the property
/// that needs pinning is: over a ragged list (trace lengths 8k/3k/12k,
/// configurations of very different cost), the assembled output is
/// bit-identical for `ARCHDSE_THREADS` ∈ {1, 4, unset}.
#[test]
fn ragged_flattened_grid_matches_across_1_4_and_unset_threads() {
    use dse_sim::{try_simulate, SimOptions};
    use dse_space::sample_legal;
    use dse_workload::Trace;

    let traces: Vec<Trace> = [("gzip", 8_000), ("art", 3_000), ("sha", 12_000)]
        .iter()
        .map(|&(name, len)| {
            let profile = archdse::workload::suites::all_benchmarks()
                .into_iter()
                .find(|p| p.name == name)
                .unwrap();
            TraceGenerator::new(&profile).generate(len)
        })
        .collect();
    let mut rng = dse_rng::Xoshiro256::seed_from(0xF1A7);
    let configs = sample_legal(&mut rng, 6);
    let jobs: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|b| (0..configs.len()).map(move |c| (b, c)))
        .collect();
    let run = || {
        par_map(&jobs, |&(b, c)| {
            try_simulate(&configs[c], &traces[b], SimOptions::with_warmup(1_000))
                .expect("sanitizer-clean simulation")
        })
    };

    let reference = with_threads_opt(Some("1"), run);
    assert_eq!(reference.len(), traces.len() * configs.len());
    for setting in [Some("4"), None] {
        let out = with_threads_opt(setting, run);
        assert_eq!(
            out,
            reference,
            "ARCHDSE_THREADS={} differs from ARCHDSE_THREADS=1",
            setting.unwrap_or("unset")
        );
    }
}

#[test]
fn par_map_bit_identical_to_serial_at_1_2_and_8_threads() {
    // A float-heavy kernel: bit-identity would fail under any reduction
    // reordering, so this checks that per-item results are placed, not
    // combined.
    let items: Vec<u64> = (0..300).collect();
    let kernel = |&x: &u64| {
        let mut acc = x as f64 + 0.5;
        for i in 1..200 {
            acc = (acc * 1.0000001 + (i as f64).sqrt()).sin() + acc;
        }
        acc
    };
    let serial: Vec<f64> = items.iter().map(kernel).collect();
    for threads in ["1", "2", "8"] {
        let par = with_threads(threads, || par_map(&items, kernel));
        assert_eq!(par.len(), serial.len());
        for (i, (p, s)) in par.iter().zip(&serial).enumerate() {
            assert_eq!(
                p.to_bits(),
                s.to_bits(),
                "index {i} differs at {threads} threads"
            );
        }
    }
}

#[test]
fn dataset_generation_is_thread_count_independent() {
    // The acceptance-criterion experiment: >= 64 configs, ARCHDSE_THREADS
    // 1 vs 4, bit-identical output.
    let profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(2)
        .collect();
    let spec = DatasetSpec {
        n_configs: 64,
        ..DatasetSpec::tiny()
    };

    let t0 = std::time::Instant::now();
    let serial = with_threads("1", || SuiteDataset::generate(&profiles, &spec));
    let serial_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let parallel = with_threads("4", || SuiteDataset::generate(&profiles, &spec));
    let parallel_time = t0.elapsed();

    assert_eq!(serial, parallel, "dataset differs between 1 and 4 threads");
    eprintln!(
        "[par] generate 64 cfgs x 2 benchmarks: 1 thread {:.2}s, 4 threads {:.2}s ({:.2}x)",
        serial_time.as_secs_f64(),
        parallel_time.as_secs_f64(),
        serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9),
    );
    // The >= 2x speedup claim only holds where 4 workers have 4 cores.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            parallel_time.as_secs_f64() < serial_time.as_secs_f64() / 2.0,
            "expected >= 2x speedup on a {cores}-core host: serial {serial_time:?}, parallel {parallel_time:?}"
        );
    }
}

/// The batched sweep scheduler must be a pure performance knob: dataset
/// generation is bit-identical across `ARCHDSE_BATCH` ∈ {1, 4, unset} ×
/// `ARCHDSE_THREADS` ∈ {1, 4, unset}. Width 1 is the legacy scalar
/// schedule, 4 forces ragged batches (65 columns per benchmark), and
/// unset exercises the default width.
#[test]
fn dataset_generation_is_batch_width_independent() {
    use dse_sim::BATCH_ENV;

    let profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(2)
        .collect();
    let spec = DatasetSpec {
        n_configs: 64,
        ..DatasetSpec::tiny()
    };
    let generate = |batch: Option<&str>, threads: Option<&str>| {
        with_threads_opt(threads, || {
            // Safe under ENV_LOCK (held by with_threads_opt's closure).
            match batch {
                Some(v) => std::env::set_var(BATCH_ENV, v),
                None => std::env::remove_var(BATCH_ENV),
            }
            let ds = SuiteDataset::generate(&profiles, &spec);
            std::env::remove_var(BATCH_ENV);
            ds
        })
    };

    let reference = generate(Some("1"), Some("1"));
    for batch in [Some("1"), Some("4"), None] {
        for threads in [Some("1"), Some("4"), None] {
            if (batch, threads) == (Some("1"), Some("1")) {
                continue;
            }
            let out = generate(batch, threads);
            assert_eq!(
                out,
                reference,
                "ARCHDSE_BATCH={} × ARCHDSE_THREADS={} differs from the 1×1 schedule",
                batch.unwrap_or("unset"),
                threads.unwrap_or("unset")
            );
        }
    }
}

#[test]
fn cross_validation_is_thread_count_independent() {
    use archdse::core::xval::{loo, EvalConfig};
    use dse_ml::MlpConfig;

    let mut profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(3)
        .collect();
    profiles.extend(archdse::workload::suites::mibench().into_iter().take(1));
    let spec = DatasetSpec {
        n_configs: 40,
        ..DatasetSpec::tiny()
    };
    let cfg = EvalConfig {
        t: 20,
        r: 8,
        repeats: 2,
        seed: 17,
        mlp: MlpConfig {
            epochs: 40,
            ..MlpConfig::default()
        },
    };
    let ds = with_threads("1", || SuiteDataset::generate(&profiles, &spec));
    let a = with_threads("1", || loo(&ds, Suite::SpecCpu2000, Metric::Cycles, &cfg));
    let b = with_threads("3", || loo(&ds, Suite::SpecCpu2000, Metric::Cycles, &cfg));
    assert_eq!(a, b, "cross-validation differs with thread count");
}
