//! Round-trip tests for the in-repo JSON layer on the real domain types:
//! serialize → parse → compare equal, f64 fidelity included, plus
//! rejection of malformed input.

use archdse::prelude::*;
use dse_core::dataset::{BenchmarkData, DatasetSpec};
use dse_rng::Xoshiro256;
use dse_util::json::{self, FromJson, Json, ToJson};

#[test]
fn config_round_trips_across_the_space() {
    let mut rng = Xoshiro256::seed_from(11);
    for cfg in dse_space::sample_legal(&mut rng, 50) {
        let text = json::to_string(&cfg);
        let back: Config = json::from_str(&text).expect("config must parse");
        assert_eq!(back, cfg);
    }
}

#[test]
fn metrics_round_trip_bit_exactly() {
    let profile = Profile::template("json", Suite::SpecCpu2000, 3);
    let trace = TraceGenerator::new(&profile).generate(8_000);
    let m = simulate(&Config::baseline(), &trace, SimOptions::with_warmup(1_000));
    let back: Metrics = json::from_str(&json::to_string(&m)).unwrap();
    // Bit-exact: the shortest round-trip float formatting loses nothing.
    assert_eq!(back.cycles.to_bits(), m.cycles.to_bits());
    assert_eq!(back.energy.to_bits(), m.energy.to_bits());
    assert_eq!(back.ed.to_bits(), m.ed.to_bits());
    assert_eq!(back.edd.to_bits(), m.edd.to_bits());
}

#[test]
fn metric_names_round_trip() {
    for m in Metric::ALL {
        let back: Metric = json::from_str(&json::to_string(&m)).unwrap();
        assert_eq!(back, m);
    }
    assert!(json::from_str::<Metric>("\"Watts\"").is_err());
}

#[test]
fn suite_dataset_round_trips_equal() {
    let profiles: Vec<Profile> = archdse::workload::suites::spec2000()
        .into_iter()
        .take(2)
        .collect();
    let ds = SuiteDataset::generate(&profiles, &DatasetSpec::tiny());
    let text = json::to_string(&ds);
    let back: SuiteDataset = json::from_str(&text).expect("dataset must parse");
    assert_eq!(back, ds);
    // And the serialized form is stable under a second trip.
    assert_eq!(json::to_string(&back), text);
}

#[test]
fn profile_round_trips_and_validates() {
    let p = Profile::template("custom-name", Suite::MiBench, 99);
    let back: Profile = json::from_str(&json::to_string(&p)).unwrap();
    assert_eq!(back, p);
    // A canonical profile keeps its interned name.
    let gzip = archdse::workload::suites::spec2000()
        .into_iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    let back: Profile = json::from_str(&json::to_string(&gzip)).unwrap();
    assert_eq!(back, gzip);
}

#[test]
fn malformed_documents_are_rejected() {
    // Syntax errors.
    assert!(json::from_str::<SuiteDataset>("{not json").is_err());
    assert!(json::from_str::<Config>("").is_err());
    // Well-formed JSON, wrong shape.
    assert!(json::from_str::<Config>("[1,2,3]").is_err());
    assert!(json::from_str::<Metrics>("{\"cycles\": 1.0}").is_err());
    assert!(json::from_str::<DatasetSpec>("{\"n_configs\": -4}").is_err());
    // Wrong field type.
    let mut bad = Config::baseline().to_json();
    if let Json::Obj(fields) = &mut bad {
        fields[0].1 = Json::Str("four".to_string());
    }
    assert!(Config::from_json(&bad).is_err());
}

#[test]
fn dataset_with_inconsistent_rows_is_rejected() {
    let profiles: Vec<Profile> = archdse::workload::suites::mibench()
        .into_iter()
        .take(1)
        .collect();
    let mut ds = SuiteDataset::generate(&profiles, &DatasetSpec::tiny());
    ds.benchmarks[0].metrics.pop();
    let text = json::to_string(&ds);
    let err = json::from_str::<SuiteDataset>(&text).unwrap_err();
    assert!(err.message.contains("metric rows"), "{err}");
}

#[test]
fn benchmark_data_round_trips() {
    let profile = Profile::template("bd", Suite::SpecCpu2000, 7);
    let trace = TraceGenerator::new(&profile).generate(6_000);
    let m = simulate(&Config::baseline(), &trace, SimOptions::with_warmup(1_000));
    let bd = BenchmarkData {
        name: "bd".to_string(),
        suite: Suite::SpecCpu2000,
        metrics: vec![m; 3],
        baseline: m,
    };
    let back: BenchmarkData = json::from_str(&json::to_string(&bd)).unwrap();
    assert_eq!(back, bd);
}
