//! Every varied design-space parameter must actually influence the
//! simulated metrics — otherwise the predictors would be learning a space
//! with dead dimensions and the reproduction of Table 1 would be hollow.

use archdse::prelude::*;

/// A mid-range configuration that stays legal when any single parameter
/// is swung to its minimum or maximum value.
fn pivot() -> Config {
    let cfg = Config {
        width: 4,
        rob: 96,
        iq: 32,
        lsq: 32,
        rf: 96,
        rf_read: 4,
        rf_write: 2,
        bpred_k: 8,
        btb_k: 2,
        max_branches: 16,
        icache_kb: 32,
        dcache_kb: 32,
        l2_kb: 2048,
    };
    assert!(cfg.is_legal());
    cfg
}

#[test]
fn every_parameter_moves_the_metrics() {
    // gcc exercises the front end (large code footprint, branchy) and
    // swim the memory system (streaming floating point): together they
    // respond to every structure.
    let traces: Vec<Trace> = ["gcc", "swim"]
        .iter()
        .map(|name| {
            let p = archdse::workload::suites::spec2000()
                .into_iter()
                .find(|p| p.name == *name)
                .unwrap();
            TraceGenerator::new(&p).generate(40_000)
        })
        .collect();
    let opts = SimOptions::with_warmup(10_000);
    let base = pivot();

    for param in Param::ALL {
        let values = param.def().values;
        let (lo, hi) = (values[0], *values.last().unwrap());
        // Port maxima are bounded by the pivot's width (legality filter).
        let hi = match param {
            Param::RfRead => hi.min(8),
            Param::RfWrite => hi.min(4),
            _ => hi,
        };
        let cfg_lo = base.with_param(param, lo);
        let cfg_hi = base.with_param(param, hi);
        assert!(
            cfg_lo.is_legal() && cfg_hi.is_legal(),
            "{param} swing illegal"
        );

        let mut max_cycle_shift: f64 = 0.0;
        let mut max_energy_shift: f64 = 0.0;
        for trace in &traces {
            let a = simulate(&cfg_lo, trace, opts);
            let b = simulate(&cfg_hi, trace, opts);
            max_cycle_shift = max_cycle_shift.max((a.cycles - b.cycles).abs() / b.cycles);
            max_energy_shift = max_energy_shift.max((a.energy - b.energy).abs() / b.energy);
        }
        assert!(
            max_cycle_shift > 0.002 || max_energy_shift > 0.001,
            "{param}: min→max swing moved cycles by {:.4}% and energy by {:.4}% — dead dimension",
            100.0 * max_cycle_shift,
            100.0 * max_energy_shift
        );
    }
}

#[test]
fn register_file_is_a_first_order_performance_parameter() {
    // The paper's strongest finding (Fig 2): a 40-entry register file is
    // the single most common property of the worst configurations.
    let p = archdse::workload::suites::spec2000()
        .into_iter()
        .find(|p| p.name == "sixtrack")
        .unwrap();
    let trace = TraceGenerator::new(&p).generate(40_000);
    let opts = SimOptions::with_warmup(10_000);
    let starved = simulate(&pivot().with_param(Param::Rf, 40), &trace, opts);
    let ample = simulate(&pivot().with_param(Param::Rf, 160), &trace, opts);
    assert!(
        starved.cycles > ample.cycles * 1.15,
        "RF 40 ({:.3e}) should clearly throttle vs RF 160 ({:.3e})",
        starved.cycles,
        ample.cycles
    );
}
