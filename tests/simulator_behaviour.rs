//! Cross-crate behavioural invariants of the simulator on real synthetic
//! workloads — the microarchitectural "laws" the design space relies on.

use archdse::prelude::*;

fn trace_for(name: &str, len: usize) -> Trace {
    let p = archdse::workload::suites::all_benchmarks()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap();
    TraceGenerator::new(&p).generate(len)
}

const OPTS: SimOptions = SimOptions::with_warmup(10_000);

#[test]
fn bigger_dcache_cuts_miss_rate() {
    // Capacity always reduces misses; whether it reduces *cycles* depends
    // on the latency/capacity trade-off (bigger L1s are slower), which is
    // the design-space structure the paper explores.
    let trace = trace_for("gzip", 50_000);
    let small = archdse::sim::simulate_detailed(
        &Config::baseline().with_param(Param::Dcache, 8),
        &trace,
        OPTS,
    )
    .0;
    let large = archdse::sim::simulate_detailed(
        &Config::baseline().with_param(Param::Dcache, 128),
        &trace,
        OPTS,
    )
    .0;
    assert!(
        large.l1d_miss_rate < small.l1d_miss_rate * 0.8,
        "128KB D-cache miss rate ({:.3}) should be well below 8KB ({:.3})",
        large.l1d_miss_rate,
        small.l1d_miss_rate
    );
}

#[test]
fn core_scaling_helps_compute_bound_more_than_memory_bound() {
    // art misses in every cache level, so scaling the core (width, window,
    // registers) barely helps it — exactly why it is the paper's outlier —
    // while a compute-bound kernel gains substantially.
    let big_core = Config {
        width: 8,
        rob: 160,
        iq: 80,
        lsq: 80,
        rf: 160,
        rf_read: 16,
        rf_write: 8,
        ..Config::baseline()
    };
    let small_core = Config {
        width: 2,
        rob: 48,
        iq: 16,
        lsq: 16,
        rf: 64,
        rf_read: 4,
        rf_write: 2,
        ..Config::baseline()
    };
    assert!(big_core.is_legal() && small_core.is_legal());
    let speedup = |name: &str| {
        let trace = trace_for(name, 40_000);
        let slow = simulate(&small_core, &trace, OPTS);
        let fast = simulate(&big_core, &trace, OPTS);
        slow.cycles / fast.cycles
    };
    let art = speedup("art");
    let sixtrack = speedup("sixtrack");
    assert!(
        sixtrack > art + 0.1,
        "compute-bound sixtrack ({sixtrack:.2}x) should gain clearly more from \
         core scaling than memory-bound art ({art:.2}x)"
    );
    assert!(art < 1.7, "art speedup should stay small, got {art:.2}");
    assert!(sixtrack > 1.3, "sixtrack should gain, got {sixtrack:.2}");
}

#[test]
fn large_code_footprint_is_icache_sensitive() {
    let gcc = trace_for("gcc", 50_000);
    let sha = trace_for("sha", 50_000);
    let gain = |t: &Trace| {
        let small = simulate(&Config::baseline().with_param(Param::Icache, 8), t, OPTS);
        let large = simulate(&Config::baseline().with_param(Param::Icache, 128), t, OPTS);
        small.cycles / large.cycles
    };
    let (g_gcc, g_sha) = (gain(&gcc), gain(&sha));
    assert!(
        g_gcc > g_sha,
        "gcc (big code) should be more I-cache sensitive ({g_gcc:.2}) than sha ({g_sha:.2})"
    );
}

#[test]
fn energy_grows_with_oversized_structures_on_small_programs() {
    // For a small kernel, a maxed-out machine wastes energy relative to a
    // right-sized one: the paper's energy sweet-spot structure.
    let trace = trace_for("sha", 50_000);
    let modest = Config {
        width: 2,
        rob: 64,
        iq: 16,
        lsq: 16,
        rf: 64,
        rf_read: 4,
        rf_write: 2,
        bpred_k: 4,
        btb_k: 1,
        max_branches: 16,
        icache_kb: 16,
        dcache_kb: 16,
        l2_kb: 512,
    };
    assert!(modest.is_legal());
    let big = Config {
        width: 8,
        rob: 160,
        iq: 80,
        lsq: 80,
        rf: 160,
        rf_read: 16,
        rf_write: 8,
        bpred_k: 32,
        btb_k: 4,
        max_branches: 32,
        icache_kb: 128,
        dcache_kb: 128,
        l2_kb: 4096,
    };
    let m = simulate(&modest, &trace, OPTS);
    let b = simulate(&big, &trace, OPTS);
    assert!(
        b.energy > m.energy,
        "maxed machine ({:.3e} nJ) should burn more than right-sized ({:.3e} nJ)",
        b.energy,
        m.energy
    );
}

#[test]
fn ed_metrics_trade_off_consistently() {
    let trace = trace_for("gzip", 40_000);
    let m = simulate(&Config::baseline(), &trace, OPTS);
    assert!((m.ed - m.cycles * m.energy).abs() < 1e-6 * m.ed);
    assert!((m.edd - m.ed * m.cycles).abs() < 1e-6 * m.edd);
}
